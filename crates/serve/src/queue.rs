//! A bounded job queue with per-client round-robin fairness.
//!
//! One client posting a thousand jobs must not starve another posting
//! one: jobs are queued per client and workers drain clients in
//! round-robin order, one job per turn. The total bound covers all
//! clients together; a full queue rejects immediately (the server turns
//! that into `429 Retry-After`) instead of blocking the accept path.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    /// Per-client FIFO lanes (`BTreeMap` for deterministic iteration).
    lanes: BTreeMap<String, VecDeque<T>>,
    /// Round-robin rotation of clients with queued jobs.
    rotation: VecDeque<String>,
    /// Total queued jobs across all lanes.
    len: usize,
    capacity: usize,
    closed: bool,
}

/// The queue. `push` never blocks; `pop` blocks until a job or close.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue bounded at `capacity` jobs total.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                capacity,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues a job for `client`. Returns the job back when the queue
    /// is full or closed — the caller owes the client a `429`/`503`.
    pub fn push(&self, client: &str, job: T) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap();
        if q.closed || q.len >= q.capacity {
            return Err(job);
        }
        q.len += 1;
        match q.lanes.get_mut(client) {
            Some(lane) => lane.push_back(job),
            None => {
                q.lanes.insert(client.to_string(), VecDeque::from([job]));
                q.rotation.push_back(client.to_string());
            }
        }
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next job in round-robin client order, blocking while
    /// the queue is empty. Returns `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(client) = q.rotation.pop_front() {
                let lane = q.lanes.get_mut(&client).expect("rotation tracks lanes");
                let job = lane.pop_front().expect("lanes in rotation are non-empty");
                if lane.is_empty() {
                    q.lanes.remove(&client);
                } else {
                    q.rotation.push_back(client);
                }
                q.len -= 1;
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.available.wait(q).unwrap();
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked `pop`s wake with `None` once empty.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Closes the queue *and* takes every pending job, in the same
    /// round-robin order `pop` would have delivered them. This is the
    /// hard-drain path: after the shutdown budget expires, the server
    /// owes each orphaned job a structured 503 instead of silently
    /// dropping it (the accounting invariant counts them as shed).
    /// Blocked `pop`s wake with `None`; subsequent pushes fail.
    pub fn close_and_take(&self) -> Vec<T> {
        let mut q = self.inner.lock().unwrap();
        q.closed = true;
        let mut orphans = Vec::with_capacity(q.len);
        while let Some(client) = q.rotation.pop_front() {
            let lane = q.lanes.get_mut(&client).expect("rotation tracks lanes");
            let job = lane.pop_front().expect("lanes in rotation are non-empty");
            if lane.is_empty() {
                q.lanes.remove(&client);
            } else {
                q.rotation.push_back(client);
            }
            q.len -= 1;
            orphans.push(job);
        }
        debug_assert_eq!(q.len, 0);
        drop(q);
        self.available.notify_all();
        orphans
    }

    /// Jobs currently queued (not counting those being executed).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// The total bound `push` enforces.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_without_blocking() {
        let q = JobQueue::new(2);
        assert!(q.push("a", 1).is_ok());
        assert!(q.push("a", 2).is_ok());
        assert_eq!(q.push("a", 3), Err(3), "bounded: third job bounces");
        assert_eq!(q.push("b", 4), Err(4), "bound is global, not per client");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let q = JobQueue::new(16);
        // Client `a` floods first; `b` and `c` each queue one job.
        for i in 0..4 {
            q.push("a", format!("a{i}")).unwrap();
        }
        q.push("b", "b0".to_string()).unwrap();
        q.push("c", "c0".to_string()).unwrap();
        let order: Vec<String> =
            std::iter::from_fn(|| if q.is_empty() { None } else { q.pop() }).collect();
        assert_eq!(order, ["a0", "b0", "c0", "a1", "a2", "a3"]);
    }

    #[test]
    fn close_wakes_blocked_pop() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(q.push("a", 1), Err(1), "closed queue rejects");
    }

    #[test]
    fn close_drains_pending_jobs_first() {
        let q = JobQueue::new(4);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_and_take_returns_orphans_in_pop_order() {
        let q = JobQueue::new(8);
        for i in 0..3 {
            q.push("a", format!("a{i}")).unwrap();
        }
        q.push("b", "b0".to_string()).unwrap();
        let orphans = q.close_and_take();
        assert_eq!(orphans, ["a0", "b0", "a1", "a2"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None, "closed and drained");
        assert_eq!(q.push("a", "late".to_string()), Err("late".to_string()));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Close racing concurrent pushers and a draining popper: every
        /// job is either delivered exactly once (via `pop` or the
        /// `close_and_take` orphan list) or its push failed — no job is
        /// lost, none is duplicated. This is the conservation law the
        /// server's accounting invariant (`accepted == completed +
        /// rejected + shed + failed`) rests on during shutdown.
        fn close_under_concurrent_pushers_conserves_jobs(
            pushers in 1usize..5,
            per_pusher in 1usize..24,
            hard_drain in any::<bool>(),
            close_after_micros in 0u64..400,
        ) {
            // Capacity covers every job, so the only push failure mode
            // in this test is the close race itself.
            let q = Arc::new(JobQueue::new(pushers * per_pusher));
            let accepted = Arc::new(Mutex::new(Vec::new()));
            let failed = Arc::new(Mutex::new(Vec::new()));
            let delivered = Arc::new(Mutex::new(Vec::new()));

            let popper = {
                let (q, delivered) = (Arc::clone(&q), Arc::clone(&delivered));
                std::thread::spawn(move || {
                    while let Some(job) = q.pop() {
                        delivered.lock().unwrap().push(job);
                    }
                })
            };
            let threads: Vec<_> = (0..pushers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    let accepted = Arc::clone(&accepted);
                    let failed = Arc::clone(&failed);
                    std::thread::spawn(move || {
                        for i in 0..per_pusher {
                            let job = (p, i);
                            match q.push(&format!("client-{p}"), job) {
                                Ok(()) => accepted.lock().unwrap().push(job),
                                Err(job) => failed.lock().unwrap().push(job),
                            }
                        }
                    })
                })
                .collect();

            std::thread::sleep(std::time::Duration::from_micros(close_after_micros));
            let orphans = if hard_drain { q.close_and_take() } else { q.close(); Vec::new() };
            for t in threads {
                t.join().unwrap();
            }
            popper.join().unwrap();
            let mut seen: Vec<(usize, usize)> = delivered.lock().unwrap().clone();
            seen.extend(orphans);
            let mut accepted = Arc::try_unwrap(accepted).unwrap().into_inner().unwrap();
            let failed = Arc::try_unwrap(failed).unwrap().into_inner().unwrap();

            prop_assert_eq!(
                seen.len() + failed.len(),
                pushers * per_pusher,
                "every job accounted for exactly once"
            );
            seen.sort_unstable();
            accepted.sort_unstable();
            prop_assert_eq!(&seen, &accepted, "delivered set == accepted set");
            for job in &failed {
                prop_assert!(!seen.contains(job), "failed push also delivered: {:?}", job);
            }
        }
    }
}
