//! Job model and execution: the pure function each worker computes.
//!
//! A job is `(endpoint, source, options)`; executing it on a freshly
//! recycled [`Machine`] is deterministic, which is what makes the
//! content-addressed cache (`crate::cache`) legal. Everything here is
//! careful to keep the response body a function of the job alone — no
//! timestamps, no worker identity, no wall-clock — so two workers (or a
//! cache replay) produce identical bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use mt_asm::{parse_with_source_map, PlainDiagnostic, SourceMap};
use mt_dse::runner::{CellResult, CellSpec};
use mt_lint::{lint_program_with, LintOptions, Severity};
use mt_sim::json::stats_json;
use mt_sim::{Backend, Machine, MachineConfig, Program, RunError, SimConfig};
use mt_trace::{Json, Profiler, TraceEvent};

/// Virtual file name diagnostics carry (request bodies never live on
/// disk).
pub const SOURCE_NAME: &str = "<request>";

/// Schema marker embedded in every response document.
pub const SCHEMA: &str = "mt-serve-v1";

/// Trace lines included in a response before truncation.
const TRACE_MAX_LINES: usize = 2000;

/// Cycles between cooperative cancellation checkpoints during a
/// controlled run ([`execute_controlled`]). At the simulator's release
/// throughput (tens of millions of cycles per second) this is a few
/// milliseconds of wall clock — fine-grained enough for request
/// deadlines, coarse enough that the `Instant::now()` per checkpoint is
/// unmeasurable.
pub const CANCEL_CHECK_CYCLES: u64 = 250_000;

/// Which service operation a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /assemble` — assemble only, return the words.
    Assemble,
    /// `POST /run` — assemble and simulate to halt.
    Run,
    /// One `POST /sweep` grid cell: the source is a comma-separated
    /// Livermore loop list (`"1,3,7"`), run under the job's
    /// [`RunOptions::machine`] through the ordinary kernel harness.
    Kernel,
}

impl Endpoint {
    /// Stable name used in cache keys and documents.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Assemble => "assemble",
            Endpoint::Run => "run",
            Endpoint::Kernel => "kernel",
        }
    }
}

/// Per-job options (the `?query` knobs of the HTTP API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Text base address.
    pub base: u32,
    /// Start with cold instruction fetch instead of warmed text.
    pub cold: bool,
    /// Run the static analyzer; lint errors fail the job with 422.
    pub lint: bool,
    /// Include the per-PC profile in the response.
    pub profile: bool,
    /// Include the per-cycle trace log (truncated after
    /// [`TRACE_MAX_LINES`] lines).
    pub trace: bool,
    /// Per-job cycle limit (0 = the simulator default).
    pub max_cycles: u64,
    /// Per-job no-progress watchdog (0 = off).
    pub watchdog: u64,
    /// Execution backend. The service defaults to the block-translated
    /// backend (throughput); `?backend=tick` forces the reference
    /// interpreter. Both produce bit-identical responses, so this knob
    /// is deliberately *not* cache-key material.
    pub backend: Backend,
    /// The simulated microarchitecture (`?config=knob=v,...` and the
    /// `?lanes=` shorthand). Changes the response body, so its full
    /// canonical serialization IS cache-key material — a `lanes=2` run
    /// can never replay a `lanes=1` entry.
    pub machine: MachineConfig,
    /// Serialize the Load/Store and ALU instruction registers
    /// (`?serialized=1`) — the split-register-file ablation proxy.
    pub serialized: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            base: 0x1_0000,
            cold: false,
            lint: false,
            profile: false,
            trace: false,
            max_cycles: 0,
            watchdog: 0,
            backend: Backend::Xlate,
            machine: MachineConfig::default(),
            serialized: false,
        }
    }
}

impl RunOptions {
    /// The simulator configuration this job runs under.
    pub fn sim_config(&self) -> SimConfig {
        let default = SimConfig::default();
        SimConfig {
            trace: self.trace,
            max_cycles: if self.max_cycles == 0 {
                default.max_cycles
            } else {
                self.max_cycles
            },
            watchdog_cycles: self.watchdog,
            backend: self.backend,
            machine: self.machine,
            serialized_issue: self.serialized,
            ..default
        }
    }
}

/// One queued job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// The operation.
    pub endpoint: Endpoint,
    /// Assembly source text.
    pub source: String,
    /// The knobs.
    pub options: RunOptions,
}

impl JobRequest {
    /// Canonical cache-key material: every response-relevant input,
    /// nothing else. Any field that can change the body must appear here
    /// (`tests` assert sensitivity), and nothing request-incidental
    /// (client id, connection) may. [`RunOptions::backend`] is excluded
    /// on purpose: the backends are bit-identical (the equivalence suite
    /// proves it), so a result computed under either one may be replayed
    /// for both.
    pub fn key_material(&self) -> String {
        let o = &self.options;
        format!(
            "{SCHEMA}|{}|base={:#x}|cold={}|lint={}|profile={}|trace={}|max_cycles={}|watchdog={}|serialized={}|machine={}\n{}",
            self.endpoint.name(),
            o.base,
            o.cold as u8,
            o.lint as u8,
            o.profile as u8,
            o.trace as u8,
            o.max_cycles,
            o.watchdog,
            o.serialized as u8,
            o.machine.key_material(),
            self.source
        )
    }
}

/// A finished job: an HTTP status, a JSON body, and the service cycles
/// when a simulation actually ran (for the latency metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// HTTP status the body pairs with.
    pub status: u16,
    /// Rendered JSON document.
    pub body: String,
    /// `RunStats::cycles` when the job simulated to completion.
    pub cycles: Option<u64>,
}

impl JobResult {
    fn new(status: u16, doc: Json) -> JobResult {
        JobResult {
            status,
            body: doc.pretty(),
            cycles: None,
        }
    }
}

/// Wall-clock timing of one execution. Deliberately *not* part of
/// [`JobResult`]: the result must stay a deterministic function of the
/// job (its `PartialEq` underpins the determinism and cache tests), so
/// anything measured off the clock travels in this side channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTiming {
    /// When the simulation section started and how long it ran
    /// (`None` when the job never reached the simulator — assemble
    /// jobs, parse errors, lint rejections).
    pub sim: Option<(Instant, Duration)>,
}

/// External control over one execution: the request's wall-clock
/// deadline and the server's drain flag. Both are observed at
/// [`CANCEL_CHECK_CYCLES`] checkpoints inside the simulator
/// ([`mt_sim::Machine::run_cancellable`]); a job with neither runs on
/// the plain uncheckpointed path and is bit-identical to [`execute`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JobControl<'a> {
    /// Absolute deadline from `?deadline-ms=`; expiry abandons the run
    /// with a structured 503 `deadline-exceeded`.
    pub deadline: Option<Instant>,
    /// Server drain flag; a `true` load abandons the run with a
    /// structured 503 `draining`.
    pub cancel: Option<&'a AtomicBool>,
}

impl JobControl<'_> {
    fn is_active(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

/// Why a controlled run was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CancelKind {
    Deadline,
    Draining,
}

/// Renders the structured 503 body for a shed or drain-cancelled
/// request. Shared by the mid-run cancel path here and the server's
/// queue-age shed / drain paths, so every 503 has the same shape.
/// Deliberately free of wall-clock detail: shed bodies stay
/// deterministic even though they are never cached.
pub fn shed_body(kind: &str, message: &str) -> String {
    error_doc(kind, [("message", Json::Str(message.to_string()))]).pretty()
}

fn cancel_result(kind: CancelKind) -> JobResult {
    let (kind, message) = match kind {
        CancelKind::Deadline => (
            "deadline-exceeded",
            "request deadline expired during simulation",
        ),
        CancelKind::Draining => ("draining", "server draining; run abandoned"),
    };
    JobResult {
        status: 503,
        body: shed_body(kind, message),
        cycles: None,
    }
}

fn error_doc(kind: &str, extra: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("status", Json::Str("error".to_string())),
        ("kind", Json::Str(kind.to_string())),
    ]);
    for (k, v) in extra {
        doc.push(k, v);
    }
    doc
}

/// Maps a [`RunError`] to its structured document (all fields are
/// deterministic properties of the program).
fn run_error_doc(err: &RunError) -> Json {
    match err {
        RunError::CycleLimit(limit) => error_doc(
            "cycle-limit",
            [
                ("limit", Json::U64(*limit)),
                ("message", Json::Str(err.to_string())),
            ],
        ),
        RunError::BadInstruction { pc, .. } => error_doc(
            "bad-instruction",
            [
                ("pc", Json::U64(*pc as u64)),
                ("message", Json::Str(err.to_string())),
            ],
        ),
        RunError::MemoryFault { pc, .. } => error_doc(
            "memory-fault",
            [
                ("pc", Json::U64(*pc as u64)),
                ("message", Json::Str(err.to_string())),
            ],
        ),
        RunError::Watchdog { pc, idle_cycles } => error_doc(
            "watchdog",
            [
                ("pc", Json::U64(*pc as u64)),
                ("idle_cycles", Json::U64(*idle_cycles)),
                ("message", Json::Str(err.to_string())),
            ],
        ),
        // Cancellation is intercepted by `execute_controlled` (it knows
        // whether the deadline or the drain flag fired); reaching this
        // arm means an uncontrolled run was cancelled, which cannot
        // happen — render it anyway rather than panic a worker.
        RunError::Cancelled { cycle } => error_doc(
            "cancelled",
            [
                ("cycle", Json::U64(*cycle)),
                ("message", Json::Str(err.to_string())),
            ],
        ),
    }
}

/// Runs the analyzer; returns the findings as JSON diagnostics plus
/// whether any error-severity finding exists.
fn lint_diagnostics(program: &Program, map: &SourceMap) -> (Json, bool) {
    let opts = LintOptions {
        allow_recurrence: map.allowed_indices("recurrence"),
        ..LintOptions::default()
    };
    let findings = lint_program_with(program, &opts);
    let has_errors = findings.iter().any(|f| f.severity() == Severity::Error);
    let diags = Json::Arr(
        findings
            .iter()
            .map(|f| PlainDiagnostic::from_finding(f, map, SOURCE_NAME).to_json())
            .collect(),
    );
    (diags, has_errors)
}

/// Per-PC profile rows (PC order, deterministic).
fn profile_json(events: &[TraceEvent]) -> Json {
    let profiler = Profiler::from_events(events);
    Json::Arr(
        profiler
            .rows()
            .map(|(pc, row)| {
                Json::obj([
                    ("pc", Json::U64(pc as u64)),
                    ("instr_index", Json::U64(row.instr_index as u64)),
                    ("completions", Json::U64(row.completions)),
                    ("transfers", Json::U64(row.transfers)),
                    ("elements", Json::U64(row.elements)),
                    ("flops", Json::U64(row.flops)),
                    ("stall_cycles", Json::U64(row.stall_cycles())),
                    ("drain", Json::U64(row.drain)),
                    ("attributed_cycles", Json::U64(row.attributed_cycles())),
                ])
            })
            .collect(),
    )
}

/// Executes one job on a worker's machine. The machine is recycled to
/// the fresh state for the job's configuration first, so results are
/// independent of whatever ran before (`tests/machine_reuse.rs` proves
/// the recycling bit-identical).
pub fn execute(job: &JobRequest, machine: &mut Machine) -> JobResult {
    execute_timed(job, machine).0
}

/// [`execute`] plus wall-clock timing of the simulation section, for
/// the server's request spans and stage latency histograms.
pub fn execute_timed(job: &JobRequest, machine: &mut Machine) -> (JobResult, JobTiming) {
    execute_controlled(job, machine, &JobControl::default())
}

/// [`execute_timed`] under external control: the request deadline and
/// the server drain flag are checked cooperatively inside the simulator
/// every [`CANCEL_CHECK_CYCLES`] cycles; either firing abandons the run
/// and returns a structured 503 (`deadline-exceeded` / `draining`).
/// With an empty [`JobControl`] this is exactly [`execute_timed`] —
/// checkpoint clamps are the proven `run_until` pause path, so an
/// uncancelled controlled run stays bit-identical to an uncontrolled
/// one (the `controlled_run_is_bit_identical` test holds it to that).
pub fn execute_controlled(
    job: &JobRequest,
    machine: &mut Machine,
    control: &JobControl,
) -> (JobResult, JobTiming) {
    let mut timing = JobTiming::default();
    // A deadline that already expired (burned in the queue, or between
    // pop and dispatch) sheds before touching the machine.
    if let Some(d) = control.deadline {
        if Instant::now() >= d {
            return (cancel_result(CancelKind::Deadline), timing);
        }
    }
    if job.endpoint == Endpoint::Kernel {
        return execute_kernel_cell(job, control);
    }
    let (program, map) = match parse_with_source_map(&job.source, job.options.base) {
        Ok(pair) => pair,
        Err(e) => {
            let diag = PlainDiagnostic::from_asm_error(&e, SOURCE_NAME);
            return (
                JobResult::new(
                    400,
                    error_doc(
                        "assemble",
                        [("diagnostics", Json::Arr(vec![diag.to_json()]))],
                    ),
                ),
                timing,
            );
        }
    };

    // A run on a bounds-restricted machine (`?config=num_fpu_regs=8`,
    // say) rejects programs that reach beyond the configured register
    // file or vector length — a property of the program, so a 422.
    if job.endpoint == Endpoint::Run {
        if let Err(m) = job.options.machine.validate_program(&program) {
            return (
                JobResult::new(
                    422,
                    error_doc("machine-bounds", [("message", Json::Str(m))]),
                ),
                timing,
            );
        }
    }

    let lint = if job.options.lint {
        let (diags, has_errors) = lint_diagnostics(&program, &map);
        if has_errors {
            return (
                JobResult::new(422, error_doc("lint", [("diagnostics", diags)])),
                timing,
            );
        }
        Some(diags)
    } else {
        None
    };

    let mut doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("status", Json::Str("ok".to_string())),
        ("endpoint", Json::Str(job.endpoint.name().to_string())),
    ]);

    if job.endpoint == Endpoint::Assemble {
        doc.push(
            "words",
            Json::Arr(
                program
                    .words
                    .iter()
                    .map(|w| Json::Str(format!("{w:08x}")))
                    .collect(),
            ),
        );
        if let Some(diags) = lint {
            doc.push("lint", diags);
        }
        return (JobResult::new(200, doc), timing);
    }

    let sim_start = Instant::now();
    machine.reset_for_new_job(job.options.sim_config());
    machine.load_program(&program);
    if !job.options.cold {
        machine.warm_instructions(&program);
    }
    let recording = job.options.profile || job.options.trace;
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut why: Option<CancelKind> = None;
    let mut check = || {
        if let Some(flag) = control.cancel {
            if flag.load(Ordering::Relaxed) {
                why = Some(CancelKind::Draining);
                return true;
            }
        }
        if let Some(d) = control.deadline {
            if Instant::now() >= d {
                why = Some(CancelKind::Deadline);
                return true;
            }
        }
        false
    };
    let outcome = match (control.is_active(), recording) {
        (false, false) => machine.run(),
        (false, true) => machine.run_with_sink(&mut events),
        (true, false) => machine.run_cancellable(CANCEL_CHECK_CYCLES, &mut check),
        (true, true) => {
            machine.run_cancellable_with_sink(&mut events, CANCEL_CHECK_CYCLES, &mut check)
        }
    };
    timing.sim = Some((sim_start, sim_start.elapsed()));
    let stats = match outcome {
        Ok(stats) => stats,
        Err(RunError::Cancelled { .. }) => {
            let kind = why.expect("a cancelled run always records why");
            return (cancel_result(kind), timing);
        }
        Err(e) => return (JobResult::new(422, run_error_doc(&e)), timing),
    };

    doc.push("stats", stats_json(&stats));
    if let Some(diags) = lint {
        doc.push("lint", diags);
    }
    if job.options.profile {
        doc.push("profile", profile_json(&events));
    }
    if job.options.trace {
        let log = machine.trace_log();
        let lines: Vec<Json> = log
            .iter()
            .take(TRACE_MAX_LINES)
            .map(|l| Json::Str(l.clone()))
            .collect();
        doc.push("trace_truncated", Json::Bool(log.len() > TRACE_MAX_LINES));
        doc.push("trace", Json::Arr(lines));
    }
    (
        JobResult {
            status: 200,
            body: doc.pretty(),
            cycles: Some(stats.cycles),
        },
        timing,
    )
}

/// Executes one sweep cell ([`Endpoint::Kernel`]): every Livermore loop
/// in the job's source list, under the job's machine, through the
/// ordinary kernel harness — the same [`CellSpec::config`] path
/// `repro-dse` takes, which is why `POST /sweep` returns the same
/// numbers. The deadline and drain flag are observed between kernels
/// (each is milliseconds of simulation, the same granularity as the
/// in-run checkpoints of `/run`).
fn execute_kernel_cell(job: &JobRequest, control: &JobControl) -> (JobResult, JobTiming) {
    let mut timing = JobTiming::default();
    let bad_list = |m: String| {
        (
            JobResult::new(400, error_doc("kernel-list", [("message", Json::Str(m))])),
            JobTiming::default(),
        )
    };
    let loops: Vec<u8> = match job
        .source
        .split(',')
        .map(|t| {
            let t = t.trim();
            t.parse::<u8>()
                .map_err(|_| format!("bad Livermore loop number {t:?}"))
        })
        .collect()
    {
        Ok(l) => l,
        Err(m) => return bad_list(m),
    };
    if loops.is_empty() || !loops.iter().all(|n| (1..=24).contains(n)) {
        return bad_list("loop numbers must be 1..=24".to_string());
    }
    if let Err(m) = job.options.machine.validate() {
        return (
            JobResult::new(
                422,
                error_doc("machine-config", [("message", Json::Str(m))]),
            ),
            timing,
        );
    }

    let cell = CellSpec::new(String::new(), job.options.machine, job.options.serialized);
    let config = SimConfig {
        backend: job.options.backend,
        ..cell.config()
    };
    let sim_start = Instant::now();
    let mut reports = Vec::with_capacity(loops.len());
    for &n in &loops {
        if let Some(flag) = control.cancel {
            if flag.load(Ordering::Relaxed) {
                return (cancel_result(CancelKind::Draining), timing);
            }
        }
        if let Some(d) = control.deadline {
            if Instant::now() >= d {
                timing.sim = Some((sim_start, sim_start.elapsed()));
                return (cancel_result(CancelKind::Deadline), timing);
            }
        }
        let kernel = mt_kernels::livermore::by_number(n);
        let run = cell
            .machine
            .validate_program(&kernel.routine.program)
            .and_then(|()| mt_kernels::harness::run_kernel_with(&kernel, config.clone()));
        match run {
            Ok(r) => reports.push(r),
            Err(m) => {
                timing.sim = Some((sim_start, sim_start.elapsed()));
                return (
                    JobResult::new(422, error_doc("kernel-failed", [("message", Json::Str(m))])),
                    timing,
                );
            }
        }
    }
    timing.sim = Some((sim_start, sim_start.elapsed()));
    let total_cycles: u64 = reports.iter().map(|r| r.cold.cycles + r.warm.cycles).sum();
    let result = CellResult {
        spec: cell,
        reports,
        error: None,
    };
    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("status", Json::Str("ok".to_string())),
        ("endpoint", Json::Str(job.endpoint.name().to_string())),
        ("machine", Json::Str(result.spec.machine.key_material())),
        ("serialized_issue", Json::Bool(result.spec.serialized_issue)),
        ("reg_file_bits", Json::U64(result.spec.reg_file_bits)),
        ("warm_hm_mflops", Json::F64(result.warm_hm_mflops())),
        (
            "warm_cycles_per_element",
            Json::F64(result.warm_cycles_per_element()),
        ),
        (
            "kernels",
            Json::Arr(
                result
                    .reports
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            ("cold", stats_json(&r.cold)),
                            ("warm", stats_json(&r.warm)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    (
        JobResult {
            status: 200,
            body: doc.pretty(),
            cycles: Some(total_cycles),
        },
        timing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_job(source: &str, options: RunOptions) -> JobResult {
        let mut m = Machine::new(SimConfig::default());
        execute(
            &JobRequest {
                endpoint: Endpoint::Run,
                source: source.to_string(),
                options,
            },
            &mut m,
        )
    }

    const FIB: &str = "\
li   r1, 0x2000
fld  R0, 0(r1)
fld  R1, 8(r1)
fadd R2..R9, R1..R8, R0..R7   ; lint: allow(recurrence)
fadd R10, R10, R10
fst  R9, 16(r1)
halt
";

    #[test]
    fn run_returns_stats_document() {
        let r = run_job(FIB, RunOptions::default());
        assert_eq!(r.status, 200);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        let cycles = doc.get("stats").unwrap().get("cycles").unwrap();
        assert_eq!(cycles.as_f64().map(|c| c as u64), r.cycles);
    }

    #[test]
    fn execution_is_deterministic_across_machines() {
        let opts = RunOptions {
            lint: true,
            profile: true,
            ..RunOptions::default()
        };
        let a = run_job(FIB, opts.clone());
        let b = run_job(FIB, opts);
        assert_eq!(a, b, "same job, byte-identical response");
    }

    #[test]
    fn assemble_returns_words_without_simulating() {
        let mut m = Machine::new(SimConfig::default());
        let r = execute(
            &JobRequest {
                endpoint: Endpoint::Assemble,
                source: "fadd R2, R0, R1\nhalt\n".to_string(),
                options: RunOptions::default(),
            },
            &mut m,
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.cycles, None);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("words").unwrap().items().len(), 2);
    }

    #[test]
    fn assemble_error_is_a_structured_400() {
        let r = run_job("not an instruction\n", RunOptions::default());
        assert_eq!(r.status, 400);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("assemble"));
        let diag = &doc.get("diagnostics").unwrap().items()[0];
        assert_eq!(diag.get("line").unwrap().as_f64(), Some(1.0));
        assert!(!r.body.contains('\x1b'), "no ANSI in responses");
    }

    #[test]
    fn lint_errors_fail_with_422() {
        // The §2.3.2 provable ordering violation.
        let src =
            "li r1, 0x2000\nfld R0, 0(r1)\nfadd R16..R23, R0..R7, R8..R15\nfld R5, 64(r1)\nhalt\n";
        let r = run_job(
            src,
            RunOptions {
                lint: true,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.status, 422);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("lint"));
        assert!(!doc.get("diagnostics").unwrap().items().is_empty());
    }

    #[test]
    fn divergent_program_hits_cycle_limit() {
        let r = run_job(
            "loop:\nbeq r0, r0, loop\nhalt\n",
            RunOptions {
                max_cycles: 10_000,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.status, 422);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("cycle-limit"));
        assert_eq!(doc.get("limit").unwrap().as_f64(), Some(10_000.0));
    }

    #[test]
    fn wedged_program_hits_watchdog() {
        // Cold fetch with a 1-cycle watchdog: the very first instruction
        // miss (14+ idle cycles) exceeds the no-progress bound.
        let r = run_job(
            "halt\n",
            RunOptions {
                cold: true,
                watchdog: 1,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.status, 422);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("watchdog"));
        assert!(doc.get("idle_cycles").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn key_material_is_sensitive_to_every_knob() {
        let base = JobRequest {
            endpoint: Endpoint::Run,
            source: FIB.to_string(),
            options: RunOptions::default(),
        };
        let mut variants = vec![
            JobRequest {
                endpoint: Endpoint::Assemble,
                ..base.clone()
            },
            JobRequest {
                source: format!("{FIB}\n"),
                ..base.clone()
            },
        ];
        for f in [
            |o: &mut RunOptions| o.base = 0x2_0000,
            |o: &mut RunOptions| o.cold = true,
            |o: &mut RunOptions| o.lint = true,
            |o: &mut RunOptions| o.profile = true,
            |o: &mut RunOptions| o.trace = true,
            |o: &mut RunOptions| o.max_cycles = 77,
            |o: &mut RunOptions| o.watchdog = 9,
            |o: &mut RunOptions| o.serialized = true,
        ] {
            let mut v = base.clone();
            f(&mut v.options);
            variants.push(v);
        }
        let mut keys: Vec<String> = variants.iter().map(JobRequest::key_material).collect();
        keys.push(base.key_material());
        let distinct: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "every knob must change the key");
    }

    /// Every machine knob must reach the cache key individually — a run
    /// under any non-default microarchitecture can never replay a result
    /// computed under a different one.
    #[test]
    fn key_material_is_sensitive_to_every_machine_knob() {
        let base = JobRequest {
            endpoint: Endpoint::Run,
            source: FIB.to_string(),
            options: RunOptions::default(),
        };
        let base_key = base.key_material();
        for &knob in mt_sim::KNOB_NAMES {
            let mut v = base.clone();
            let old = v.options.machine.get_knob(knob).unwrap();
            let fresh = if knob.ends_with("_bytes") || knob.ends_with("_line") {
                old * 2
            } else {
                old + 1
            };
            v.options.machine.set_knob(knob, fresh).unwrap();
            assert_ne!(
                v.key_material(),
                base_key,
                "machine knob {knob} must change the cache key"
            );
        }
    }

    /// The satellite regression spelled out: a `?lanes=2` run must never
    /// hit a `lanes=1` cache entry.
    #[test]
    fn lanes_2_never_hits_a_lanes_1_cache_entry() {
        let mut cache = crate::cache::ResultCache::new(16);
        let lanes1 = JobRequest {
            endpoint: Endpoint::Run,
            source: FIB.to_string(),
            options: RunOptions::default(),
        };
        let mut lanes2 = lanes1.clone();
        lanes2.options.machine.set_knob("fpu_lanes", 2).unwrap();

        let mut m = Machine::new(SimConfig::default());
        let r1 = execute(&lanes1, &mut m);
        cache.insert(lanes1.key_material(), r1.status, r1.body.clone());
        assert!(
            cache.get(&lanes2.key_material()).is_none(),
            "a lanes=2 request replayed a lanes=1 body"
        );
        assert_eq!(
            cache.get(&lanes1.key_material()),
            Some((r1.status, r1.body)),
            "the lanes=1 entry still serves lanes=1"
        );
    }

    /// Kernel-cell jobs run the same numbers `repro-dse` computes (both
    /// go through `CellSpec::config` and the kernel harness).
    #[test]
    fn kernel_cell_matches_the_dse_runner() {
        let mut m = Machine::new(SimConfig::default());
        let job = JobRequest {
            endpoint: Endpoint::Kernel,
            source: "7,12".to_string(),
            options: RunOptions::default(),
        };
        let r = execute(&job, &mut m);
        assert_eq!(r.status, 200);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("endpoint").unwrap().as_str(), Some("kernel"));

        let cell = CellSpec::new(String::new(), MachineConfig::default(), false);
        let direct = mt_dse::run_grid(std::slice::from_ref(&cell), &[7, 12]);
        assert_eq!(
            doc.get("warm_hm_mflops").unwrap().as_f64().unwrap(),
            direct[0].warm_hm_mflops(),
            "service and repro-dse disagree on the same cell"
        );
        let kernels = doc.get("kernels").unwrap().items();
        assert_eq!(kernels.len(), 2);
        assert_eq!(
            kernels[0]
                .get("warm")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_f64(),
            Some(direct[0].reports[0].warm.cycles as f64)
        );
    }

    #[test]
    fn kernel_cell_rejects_bad_lists_and_tiny_machines() {
        let mut m = Machine::new(SimConfig::default());
        for (source, status, kind) in [
            ("0", 400, "kernel-list"),
            ("25", 400, "kernel-list"),
            ("seven", 400, "kernel-list"),
            ("", 400, "kernel-list"),
        ] {
            let r = execute(
                &JobRequest {
                    endpoint: Endpoint::Kernel,
                    source: source.to_string(),
                    options: RunOptions::default(),
                },
                &mut m,
            );
            assert_eq!(r.status, status, "{source:?}");
            let doc = mt_trace::json::parse(&r.body).unwrap();
            assert_eq!(doc.get("kind").unwrap().as_str(), Some(kind));
        }
        // A machine too small for the kernels is a 422 cell failure.
        let mut options = RunOptions::default();
        options.machine.num_fpu_regs = 2;
        let r = execute(
            &JobRequest {
                endpoint: Endpoint::Kernel,
                source: "7".to_string(),
                options,
            },
            &mut m,
        );
        assert_eq!(r.status, 422);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("kernel-failed"));
    }

    /// A bounds-restricted machine rejects over-limit assembly on `/run`.
    #[test]
    fn run_rejects_programs_beyond_the_configured_register_file() {
        let mut options = RunOptions::default();
        options.machine.num_fpu_regs = 8;
        let r = run_job(FIB, options);
        assert_eq!(r.status, 422, "R10 is beyond an 8-register file");
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("machine-bounds"));
    }

    /// A controlled run that is never cancelled must be bit-identical to
    /// the plain path — deadlines may not perturb results (the cache
    /// stores only uncancelled bodies, replayed for requests with any
    /// deadline).
    #[test]
    fn controlled_run_is_bit_identical() {
        for options in [
            RunOptions::default(),
            RunOptions {
                profile: true,
                trace: true,
                ..RunOptions::default()
            },
        ] {
            let job = JobRequest {
                endpoint: Endpoint::Run,
                source: FIB.to_string(),
                options,
            };
            let mut m = Machine::new(SimConfig::default());
            let plain = execute_timed(&job, &mut m).0;
            let cancel = AtomicBool::new(false);
            let control = JobControl {
                deadline: Some(Instant::now() + Duration::from_secs(600)),
                cancel: Some(&cancel),
            };
            let controlled = execute_controlled(&job, &mut m, &control).0;
            assert_eq!(plain, controlled, "checkpoints leaked into the body");
        }
    }

    #[test]
    fn expired_deadline_cancels_mid_run_with_503() {
        let job = JobRequest {
            endpoint: Endpoint::Run,
            source: "loop:\nbeq r0, r0, loop\nhalt\n".to_string(),
            options: RunOptions {
                max_cycles: 4_000_000_000,
                ..RunOptions::default()
            },
        };
        let mut m = Machine::new(SimConfig::default());
        let control = JobControl {
            deadline: Some(Instant::now() + Duration::from_millis(50)),
            cancel: None,
        };
        let start = Instant::now();
        let (r, _) = execute_controlled(&job, &mut m, &control);
        assert_eq!(r.status, 503);
        assert!(start.elapsed() < Duration::from_secs(30), "never cancelled");
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("deadline-exceeded"));
    }

    #[test]
    fn drain_flag_cancels_mid_run_with_503() {
        let job = JobRequest {
            endpoint: Endpoint::Run,
            source: "loop:\nbeq r0, r0, loop\nhalt\n".to_string(),
            options: RunOptions {
                max_cycles: 4_000_000_000,
                ..RunOptions::default()
            },
        };
        let mut m = Machine::new(SimConfig::default());
        let cancel = AtomicBool::new(true);
        let control = JobControl {
            deadline: None,
            cancel: Some(&cancel),
        };
        let (r, _) = execute_controlled(&job, &mut m, &control);
        assert_eq!(r.status, 503);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("draining"));
    }

    /// An already-expired deadline sheds before the machine is touched.
    #[test]
    fn pre_expired_deadline_sheds_without_simulating() {
        let job = JobRequest {
            endpoint: Endpoint::Run,
            source: FIB.to_string(),
            options: RunOptions::default(),
        };
        let mut m = Machine::new(SimConfig::default());
        let control = JobControl {
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            cancel: None,
        };
        let (r, timing) = execute_controlled(&job, &mut m, &control);
        assert_eq!(r.status, 503);
        assert!(
            timing.sim.is_none(),
            "shed jobs must not reach the simulator"
        );
    }

    /// The backend knob must NOT reach the cache key: both backends
    /// produce bit-identical bodies, so a cached result serves either.
    #[test]
    fn key_material_ignores_backend() {
        let base = JobRequest {
            endpoint: Endpoint::Run,
            source: FIB.to_string(),
            options: RunOptions::default(),
        };
        let mut tick = base.clone();
        tick.options.backend = Backend::Tick;
        let mut xlate = base.clone();
        xlate.options.backend = Backend::Xlate;
        assert_eq!(tick.key_material(), xlate.key_material());
    }

    /// Same job, both backends: byte-identical response documents (the
    /// service-level face of the equivalence suite, and what makes
    /// excluding the backend from the cache key sound).
    #[test]
    fn backends_produce_identical_responses() {
        for options in [
            RunOptions::default(),
            RunOptions {
                cold: true,
                ..RunOptions::default()
            },
        ] {
            let mut tick_opts = options.clone();
            tick_opts.backend = Backend::Tick;
            let mut xlate_opts = options;
            xlate_opts.backend = Backend::Xlate;
            let tick = run_job(FIB, tick_opts.clone());
            let xlate = run_job(FIB, xlate_opts);
            assert_eq!(tick.status, xlate.status);
            assert_eq!(tick.body, xlate.body, "backend leaked into the body");
        }
    }
}
