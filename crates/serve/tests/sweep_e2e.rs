//! End-to-end `POST /sweep` acceptance over a real TCP server:
//!
//! 1. a small grid returns an aggregated `mt-dse-v1` document whose
//!    numbers match the `mt-dse` runner for the same grid;
//! 2. an oversized grid answers a structured `422 grid-too-large`
//!    before any cell runs;
//! 3. `?deadline-ms=` is honored per cell (an expired deadline sheds
//!    with `503 deadline-exceeded`);
//! 4. the machine config reaches the result cache: a `?lanes=2` run
//!    never replays a `lanes=1` body.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mt_dse::{run_grid, GridSpec};
use mt_serve::{serve, ServerConfig};

struct Reply {
    status: u16,
    cache: Option<String>,
    body: String,
}

fn request(addr: &str, method: &str, target: &str, body: &[u8]) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nX-Client-Id: sweeper\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .unwrap();
    writer.write_all(body).unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    let mut cache = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().unwrap(),
                "x-cache" => cache = Some(value.trim().to_string()),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Reply {
        status,
        cache,
        body: String::from_utf8(body).unwrap(),
    }
}

fn post(addr: &str, target: &str, body: &str) -> Reply {
    request(addr, "POST", target, body.as_bytes())
}

fn start() -> (mt_serve::ServerHandle, String) {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn sweep_aggregates_and_matches_the_dse_runner() {
    let (handle, addr) = start();
    let grid_text = "fpu_latency=1,3\nfpu_lanes=1,2\n";
    let reply = post(&addr, "/sweep?loops=12,21", grid_text);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = mt_trace::json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("mt-dse-v1"));
    assert_eq!(
        doc.get("grid").unwrap().get("mode").unwrap().as_str(),
        Some("cartesian")
    );
    let cells = doc.get("cells").unwrap().items();
    assert_eq!(cells.len(), 4);

    // The service's numbers are the dse runner's numbers, cell by cell.
    let grid = GridSpec::parse(grid_text).unwrap();
    let direct = run_grid(&grid.enumerate().unwrap(), &[12, 21]);
    for (cell, expect) in cells.iter().zip(&direct) {
        assert_eq!(
            cell.get("name").unwrap().as_str(),
            Some(expect.spec.name.as_str())
        );
        assert_eq!(
            cell.get("warm_hm_mflops").unwrap().as_f64().unwrap(),
            expect.warm_hm_mflops(),
            "cell {}",
            expect.spec.name
        );
        let kernels = cell.get("kernels").unwrap().items();
        assert_eq!(kernels.len(), 2);
        assert_eq!(
            kernels[0]
                .get("warm")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_f64(),
            Some(expect.reports[0].warm.cycles as f64)
        );
    }
    assert!(!doc.get("pareto").unwrap().items().is_empty());

    // Rerunning the same sweep replays every cell from the cache and
    // aggregates to the same bytes.
    let again = post(&addr, "/sweep?loops=12,21", grid_text);
    assert_eq!(again.status, 200);
    assert_eq!(again.body, reply.body, "sweep is deterministic");

    handle.shutdown();
}

#[test]
fn oversized_and_malformed_grids_are_rejected_up_front() {
    let (handle, addr) = start();
    // 65 cells > the 64-cell cap.
    let big: String = format!(
        "fpu_latency={}\n",
        (1..=65)
            .map(|i| (i % 8 + 1).to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let reply = post(&addr, "/sweep", &big);
    assert_eq!(reply.status, 422, "{}", reply.body);
    let doc = mt_trace::json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("grid-too-large"));
    assert_eq!(doc.get("cells").unwrap().as_f64(), Some(65.0));

    let bad = post(&addr, "/sweep", "not_a_knob=1\n");
    assert_eq!(bad.status, 400);
    let doc = mt_trace::json::parse(&bad.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("bad-grid"));

    // Invalid cell geometry parses but fails enumeration: 422.
    let invalid = post(&addr, "/sweep", "dcache_line=24\n");
    assert_eq!(invalid.status, 422, "{}", invalid.body);

    handle.shutdown();
}

#[test]
fn sweep_deadline_is_honored_per_cell() {
    let (handle, addr) = start();
    let reply = post(&addr, "/sweep?loops=12&deadline-ms=0", "fpu_lanes=1,2\n");
    assert_eq!(reply.status, 503, "{}", reply.body);
    let doc = mt_trace::json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("deadline-exceeded"));
    handle.shutdown();
}

#[test]
fn lanes_query_never_replays_a_different_lane_count() {
    let (handle, addr) = start();
    let src = "li r1, 0x2000\nfld R0, 0(r1)\nfadd R2..R9, R1..R8, R0..R7 ; lint: allow(recurrence)\nhalt\n";
    let lanes1 = post(&addr, "/run", src);
    assert_eq!(lanes1.status, 200);
    assert_eq!(lanes1.cache.as_deref(), Some("miss"));
    // Same source with ?lanes=2 must be a cache MISS, not a replay.
    let lanes2 = post(&addr, "/run?lanes=2", src);
    assert_eq!(lanes2.status, 200);
    assert_eq!(
        lanes2.cache.as_deref(),
        Some("miss"),
        "a lanes=2 request hit a lanes=1 cache entry"
    );
    // And each variant replays its own entry.
    assert_eq!(
        post(&addr, "/run?lanes=2", src).cache.as_deref(),
        Some("hit")
    );
    assert_eq!(post(&addr, "/run", src).cache.as_deref(), Some("hit"));
    handle.shutdown();
}
