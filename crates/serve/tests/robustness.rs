//! End-to-end robustness tests over a real TCP server: the mt-chaos
//! acceptance scenarios.
//!
//! 1. A deliberately panicking job leaves the pool at full strength
//!    (`worker_panics >= 1`) and subsequent responses are bit-identical
//!    to a fresh server's.
//! 2. A killed worker thread is respawned by the supervisor; its
//!    in-flight job answers `500 worker-lost`.
//! 3. A request whose deadline expires in the queue is shed with a
//!    structured `503` without ever occupying a worker (per-worker job
//!    counters prove it), and the accounting invariant balances.
//! 4. A running job that overruns its deadline is abandoned at a
//!    cooperative checkpoint with `503 deadline-exceeded`.
//! 5. Graceful drain: during shutdown `/metrics` reports
//!    `draining: true`, new jobs get `503 draining`, in-flight jobs are
//!    cancelled within the budget, and the port closes afterwards.
//! 6. The connection cap answers `503 overloaded` without occupying a
//!    handler, and the gauge recovers when connections close.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mt_serve::{serve, ServerConfig, KILL_MARKER, PANIC_MARKER};

const DAXPY: &str = include_str!("../../../examples/asm/daxpy.s");

struct Reply {
    status: u16,
    body: String,
}

fn request(addr: &str, method: &str, target: &str, client_id: &str, body: &[u8]) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // Write errors are tolerated: an overloaded server answers its 503
    // and closes before reading the request, so the write may hit a
    // broken pipe while a valid response is already on the wire.
    let _ = write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nX-Client-Id: {client_id}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(body);

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Reply {
        status,
        body: String::from_utf8(body).unwrap(),
    }
}

fn post(addr: &str, target: &str, client_id: &str, body: &str) -> Reply {
    request(addr, "POST", target, client_id, body.as_bytes())
}

fn get(addr: &str, target: &str) -> Reply {
    request(addr, "GET", target, "probe", b"")
}

fn metrics_doc(addr: &str) -> mt_trace::Json {
    let body = get(addr, "/metrics").body;
    mt_trace::json::parse(&body).expect("metrics parse")
}

fn counter(doc: &mt_trace::Json, name: &str) -> u64 {
    doc.get("registry")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0) as u64
}

fn kind_of(reply: &Reply) -> String {
    mt_trace::json::parse(&reply.body)
        .ok()
        .and_then(|d| d.get("kind").and_then(|k| k.as_str()).map(str::to_string))
        .unwrap_or_default()
}

/// Polls until `f` holds or the deadline passes.
fn wait_for(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A divergent program distinguishable by `tag` (cache-proof).
fn spin(tag: u32) -> String {
    format!("li r9, {tag}\nspin:\nbeq r0, r0, spin\nhalt\n")
}

/// The reference body a fresh server computes for `DAXPY`.
fn fresh_reference() -> String {
    let mut m = mt_sim::Machine::new(mt_sim::SimConfig::default());
    mt_serve::job::execute(
        &mt_serve::JobRequest {
            endpoint: mt_serve::Endpoint::Run,
            source: DAXPY.to_string(),
            options: mt_serve::RunOptions::default(),
        },
        &mut m,
    )
    .body
}

/// Acceptance: a deliberately panicking job is caught, the pool stays
/// at full strength, `worker_panics >= 1`, and subsequent responses are
/// bit-identical to a fresh server's.
#[test]
fn panicking_job_leaves_pool_at_full_strength() {
    let handle = serve(ServerConfig {
        workers: 1,
        chaos_hooks: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let boom = post(&addr, "/run", "p", &format!("; {PANIC_MARKER}\nhalt\n"));
    assert_eq!(boom.status, 500);
    assert_eq!(kind_of(&boom), "worker-panic");

    // The single worker caught the panic, rebuilt its machine, and is
    // the only thread that could serve this next job.
    let after = post(&addr, "/run", "p", DAXPY);
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        after.body,
        fresh_reference(),
        "post-panic responses must be bit-identical to a fresh server"
    );

    let doc = metrics_doc(&addr);
    assert!(counter(&doc, "worker_panics") >= 1);
    assert_eq!(counter(&doc, "worker_respawns"), 0, "thread never died");
    assert_eq!(doc.get("workers").unwrap().as_f64(), Some(1.0));
    assert_eq!(doc.get("busy_workers").unwrap().as_f64(), Some(0.0));
    // Terminal buckets: the panic is the one failure; the invariant
    // balances.
    assert_eq!(counter(&doc, "jobs_failed"), 1);
    assert_eq!(
        counter(&doc, "jobs_accepted"),
        counter(&doc, "jobs_completed")
            + counter(&doc, "jobs_rejected")
            + counter(&doc, "jobs_shed")
            + counter(&doc, "jobs_failed")
    );
    handle.shutdown();
}

/// Acceptance: a worker thread that dies outright is respawned by the
/// supervisor; the in-flight job answers `500 worker-lost`; the pool is
/// back to full strength for the next job.
#[test]
fn killed_worker_is_respawned_by_the_supervisor() {
    let handle = serve(ServerConfig {
        workers: 1,
        chaos_hooks: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let lost = post(&addr, "/run", "k", &format!("; {KILL_MARKER}\nhalt\n"));
    assert_eq!(lost.status, 500);
    assert_eq!(kind_of(&lost), "worker-lost");

    wait_for("supervisor respawn", || {
        counter(&metrics_doc(&addr), "worker_respawns") >= 1
    });

    // The respawned worker serves the next job, bit-identical.
    let after = post(&addr, "/run", "k", DAXPY);
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(after.body, fresh_reference());

    let doc = metrics_doc(&addr);
    assert_eq!(counter(&doc, "jobs_failed"), 1);
    assert_eq!(doc.get("busy_workers").unwrap().as_f64(), Some(0.0));
    handle.shutdown();
}

/// Acceptance: a deadline burned entirely in the queue sheds the job
/// with a structured `503` at dequeue — the per-worker job counters
/// prove it never occupied a worker — and the accounting invariant
/// balances.
#[test]
fn queue_aged_deadline_sheds_without_occupying_a_worker() {
    let handle = serve(ServerConfig {
        workers: 1,
        cache_entries: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let (occupant, doomed) = std::thread::scope(|scope| {
        // Occupy the only worker with a 20M-cycle spin.
        let addr_a = addr.clone();
        let occupant = scope.spawn(move || post(&addr_a, "/run?cycles=20000000", "a", &spin(1)));
        wait_for("worker to pick up the occupant", || {
            metrics_doc(&addr)
                .get("busy_workers")
                .and_then(|v| v.as_f64())
                == Some(1.0)
        });
        // This job's 1 ms deadline burns in the queue while the spin
        // runs; the worker must shed it at dequeue.
        let addr_b = addr.clone();
        let doomed = scope.spawn(move || post(&addr_b, "/run?deadline-ms=1", "b", "halt\n"));
        (occupant.join().unwrap(), doomed.join().unwrap())
    });

    assert_eq!(occupant.status, 422, "{}", occupant.body);
    assert_eq!(kind_of(&occupant), "cycle-limit");
    assert_eq!(doomed.status, 503, "{}", doomed.body);
    assert_eq!(kind_of(&doomed), "deadline-exceeded");

    wait_for("worker to go idle", || {
        metrics_doc(&addr)
            .get("busy_workers")
            .and_then(|v| v.as_f64())
            == Some(0.0)
    });
    let doc = metrics_doc(&addr);
    // The shed job never occupied the worker: only the occupant counts.
    let worker0 = &doc.get("per_worker").unwrap().items()[0];
    assert_eq!(
        worker0.get("jobs").unwrap().as_f64(),
        Some(1.0),
        "shed job must not reach the per-worker job counter"
    );
    assert_eq!(counter(&doc, "jobs_shed"), 1);
    assert_eq!(counter(&doc, "jobs_accepted"), 2);
    assert_eq!(
        counter(&doc, "jobs_accepted"),
        counter(&doc, "jobs_completed")
            + counter(&doc, "jobs_rejected")
            + counter(&doc, "jobs_shed")
            + counter(&doc, "jobs_failed")
    );
    handle.shutdown();
}

/// A job already running when its deadline expires is abandoned at a
/// cooperative checkpoint — long before its 4-billion-cycle limit.
#[test]
fn running_job_is_cancelled_at_its_deadline() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let started = Instant::now();
    let r = post(
        &addr,
        "/run?cycles=4000000000&deadline-ms=300",
        "d",
        &spin(7),
    );
    assert_eq!(r.status, 503, "{}", r.body);
    assert_eq!(kind_of(&r), "deadline-exceeded");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline did not interrupt the run: {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

/// Graceful drain under load: `/metrics` reports `draining: true`, new
/// jobs are refused with `503 draining`, the in-flight job is cancelled
/// within the budget, and the port closes once shutdown returns.
#[test]
fn graceful_drain_refuses_new_jobs_and_cancels_in_flight() {
    let handle = serve(ServerConfig {
        workers: 1,
        drain_budget: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || post(&addr, "/run?cycles=4000000000", "load", &spin(9)))
    };
    wait_for("worker to pick up the long job", || {
        metrics_doc(&addr)
            .get("busy_workers")
            .and_then(|v| v.as_f64())
            == Some(1.0)
    });

    let shutdown = std::thread::spawn(move || handle.shutdown());
    wait_for("draining gauge", || {
        metrics_doc(&addr)
            .get("draining")
            .map(|v| matches!(v, mt_trace::Json::Bool(true)))
            .unwrap_or(false)
    });

    // Admission is closed while GETs still serve.
    let refused = post(&addr, "/run", "late", "halt\n");
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert_eq!(kind_of(&refused), "draining");

    // The in-flight run is cancelled at a checkpoint, not run to its
    // 4-billion-cycle limit.
    let r = inflight.join().unwrap();
    assert_eq!(r.status, 503, "{}", r.body);
    assert_eq!(kind_of(&r), "draining");

    shutdown.join().unwrap();
    // The listener is gone: connections fail (allow a beat for the OS).
    wait_for("port to close", || TcpStream::connect(&addr).is_err());
}

/// The max-in-flight connection cap answers `503 overloaded` straight
/// from the accept path, and the gauge recovers once connections close.
#[test]
fn connection_cap_rejects_excess_connections() {
    let handle = serve(ServerConfig {
        workers: 1,
        max_connections: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // Two idle connections occupy the whole budget (their handlers sit
    // in read_head under the header deadline).
    let idle_a = TcpStream::connect(&addr).unwrap();
    let idle_b = TcpStream::connect(&addr).unwrap();
    // Let the accept loop register both before the third arrives.
    std::thread::sleep(Duration::from_millis(200));

    let refused = get(&addr, "/healthz");
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert_eq!(kind_of(&refused), "overloaded");

    // Freeing the slots restores service. The probe itself needs a
    // slot, and its own connections can transiently re-fill the cap, so
    // the /metrics fetch is part of the retried predicate: a rejected
    // fetch yields a shed body with no `registry` key and counts as
    // "not yet".
    drop(idle_a);
    drop(idle_b);
    wait_for("connection slots to free", || {
        let reply = get(&addr, "/metrics");
        reply.status == 200
            && mt_trace::json::parse(&reply.body)
                .map(|doc| counter(&doc, "rejected_overloaded") >= 1)
                .unwrap_or(false)
    });
    handle.shutdown();
}
