//! End-to-end acceptance tests over a real TCP server: the issue's
//! three scenarios.
//!
//! 1. N concurrent clients posting the same program all get
//!    byte-identical bodies, whether cached or computed.
//! 2. A full queue answers `429` immediately and never blocks the
//!    accept loop (health checks still answer while the pool is wedged).
//! 3. A divergent program trips its per-job limit and returns a
//!    structured error while other jobs complete normally.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mt_serve::{serve, ServerConfig};

const DAXPY: &str = include_str!("../../../examples/asm/daxpy.s");

struct Reply {
    status: u16,
    cache: Option<String>,
    body: String,
}

fn request(addr: &str, method: &str, target: &str, client_id: &str, body: &[u8]) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nX-Client-Id: {client_id}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .unwrap();
    writer.write_all(body).unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut cache = None;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "x-cache" => cache = Some(value.trim().to_string()),
                "content-length" => content_length = value.trim().parse().unwrap(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    Reply {
        status,
        cache,
        body: String::from_utf8(body).unwrap(),
    }
}

fn post(addr: &str, target: &str, client_id: &str, body: &str) -> Reply {
    request(addr, "POST", target, client_id, body.as_bytes())
}

fn get(addr: &str, target: &str) -> Reply {
    request(addr, "GET", target, "probe", b"")
}

fn metrics_gauge(addr: &str, key: &str) -> u64 {
    let body = get(addr, "/metrics").body;
    let doc = mt_trace::json::parse(&body).expect("metrics parse");
    doc.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("metrics missing {key}: {body}")) as u64
}

/// Polls until `f` holds or the deadline passes.
fn wait_for(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_clients_get_byte_identical_bodies() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // The reference body: computed directly, no server involved. The
    // service must return exactly these bytes whether it computes or
    // replays its cache.
    let reference = {
        let mut m = mt_sim::Machine::new(mt_sim::SimConfig::default());
        mt_serve::job::execute(
            &mt_serve::JobRequest {
                endpoint: mt_serve::Endpoint::Run,
                source: DAXPY.to_string(),
                options: mt_serve::RunOptions {
                    profile: true,
                    ..Default::default()
                },
            },
            &mut m,
        )
    };
    assert_eq!(reference.status, 200);

    let bodies: Vec<(Option<String>, String)> = std::thread::scope(|scope| {
        let addr = &addr;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let r = post(addr, "/run?profile=1", &format!("c{i}"), DAXPY);
                    assert_eq!(r.status, 200);
                    (r.cache, r.body)
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for (cache, body) in &bodies {
        assert_eq!(
            body, &reference.body,
            "served body (X-Cache: {cache:?}) must match the direct computation"
        );
    }
    // With 8 concurrent identical jobs and 2 workers at least one must
    // have been a cache replay and at least one a computation.
    let hits = bodies
        .iter()
        .filter(|(c, _)| c.as_deref() == Some("hit"))
        .count();
    assert!(hits < bodies.len(), "someone computed it first");

    // A repeat after the dust settles is a guaranteed hit.
    let again = post(&addr, "/run?profile=1", "late", DAXPY);
    assert_eq!(again.cache.as_deref(), Some("hit"));
    assert_eq!(again.body, reference.body);
    handle.shutdown();
}

#[test]
fn full_queue_returns_429_without_blocking_the_accept_loop() {
    // One worker, queue bound 1, cache off: the second slow job fills
    // the queue, the third must bounce.
    let handle = serve(ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache_entries: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // Distinct divergent programs (cache off anyway, but keep them
    // distinct for clarity); each spins until its 20M-cycle limit —
    // long enough that job A is still running when the third request
    // arrives, even on a slow machine.
    let slow = |tag: u32| format!("li r9, {tag}\nspin:\nbeq r0, r0, spin\nhalt\n");
    let target = "/run?cycles=20000000";

    let (a, b, bounced) = std::thread::scope(|scope| {
        let addr_a = addr.clone();
        let src_a = slow(1);
        let a = scope.spawn(move || post(&addr_a, target, "a", &src_a));
        wait_for("worker to pick up job A", || {
            metrics_gauge(&addr, "busy_workers") == 1
        });

        let addr_b = addr.clone();
        let src_b = slow(2);
        let b = scope.spawn(move || post(&addr_b, target, "b", &src_b));
        wait_for("job B to queue", || {
            metrics_gauge(&addr, "queue_depth") == 1
        });

        // Queue full: an immediate 429 with Retry-After, long before the
        // slow jobs finish.
        let started = Instant::now();
        let bounced = post(&addr, target, "c", &slow(3));
        let rejected_in = started.elapsed();
        assert!(
            rejected_in < Duration::from_secs(5),
            "429 must not wait for the pool (took {rejected_in:?})"
        );

        // The accept loop is alive while the worker is still busy.
        assert_eq!(get(&addr, "/healthz").status, 200);

        (a.join().unwrap(), b.join().unwrap(), bounced)
    });

    assert_eq!(bounced.status, 429);
    let doc = mt_trace::json::parse(&bounced.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("queue-full"));

    // The slow jobs were never harmed: both hit their cycle limit.
    for r in [&a, &b] {
        assert_eq!(r.status, 422);
        let doc = mt_trace::json::parse(&r.body).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("cycle-limit"));
    }
    handle.shutdown();
}

#[test]
fn watchdog_job_fails_structured_while_others_complete() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let (wedged, fine) = std::thread::scope(|scope| {
        let addr_w = addr.clone();
        // Cold fetch with a 1-cycle no-progress bound: the first
        // instruction-cache miss exceeds it — a "wedged" job from the
        // service's point of view.
        let wedged = scope.spawn(move || post(&addr_w, "/run?cold=1&watchdog=1", "w", "halt\n"));
        let addr_f = addr.clone();
        let fine = scope.spawn(move || post(&addr_f, "/run", "f", DAXPY));
        (wedged.join().unwrap(), fine.join().unwrap())
    });

    assert_eq!(wedged.status, 422);
    let doc = mt_trace::json::parse(&wedged.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("watchdog"));
    assert!(doc.get("idle_cycles").unwrap().as_f64().unwrap() >= 1.0);

    assert_eq!(
        fine.status, 200,
        "healthy jobs complete alongside: {}",
        fine.body
    );
    handle.shutdown();
}

#[test]
fn cache_is_sensitive_to_options_and_source() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let warm = post(&addr, "/run", "s", DAXPY);
    assert_eq!((warm.status, warm.cache.as_deref()), (200, Some("miss")));
    let replay = post(&addr, "/run", "s", DAXPY);
    assert_eq!(replay.cache.as_deref(), Some("hit"));
    assert_eq!(replay.body, warm.body, "hit replays the computed bytes");

    let cold = post(&addr, "/run?cold=1", "s", DAXPY);
    assert_eq!(cold.cache.as_deref(), Some("miss"), "option change misses");
    assert_ne!(cold.body, warm.body, "cold stats differ");

    let edited = post(&addr, "/run", "s", &format!("{DAXPY}\n; comment\n"));
    assert_eq!(
        edited.cache.as_deref(),
        Some("miss"),
        "source change misses"
    );

    // Metrics reflect the traffic and parse cleanly.
    let metrics = get(&addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let doc = mt_trace::json::parse(&metrics.body).unwrap();
    let counters = doc.get("registry").unwrap().get("counters").unwrap();
    assert_eq!(counters.get("cache_hits").unwrap().as_f64(), Some(1.0));
    assert_eq!(counters.get("cache_misses").unwrap().as_f64(), Some(3.0));
    assert!(doc
        .get("service_cycles")
        .unwrap()
        .get("p50")
        .unwrap()
        .as_f64()
        .is_some());
    handle.shutdown();
}

#[test]
fn metrics_expose_stage_latency_and_windows() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let r = post(&addr, "/run", "lat", DAXPY);
    assert_eq!(r.status, 200);

    // The handler folds spans into the histograms *after* writing the
    // response, so poll until the request's stages have landed.
    wait_for("stage histograms to fill", || {
        let body = get(&addr, "/metrics").body;
        let doc = mt_trace::json::parse(&body).expect("metrics parse");
        doc.get("latency_us")
            .and_then(|l| l.get("sim-run"))
            .and_then(|s| s.get("count"))
            .and_then(|c| c.as_f64())
            .is_some_and(|n| n >= 1.0)
    });

    let body = get(&addr, "/metrics").body;
    let doc = mt_trace::json::parse(&body).unwrap();
    let latency = doc.get("latency_us").unwrap();
    // Every pipeline stage is present with a full quantile summary.
    for stage in [
        "total",
        "read-request",
        "parse",
        "cache-lookup",
        "queue-wait",
        "worker-service",
        "sim-run",
        "respond",
    ] {
        let s = latency
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}: {body}"));
        for key in ["count", "min", "max", "mean", "p50", "p90", "p99", "p999"] {
            assert!(s.get(key).is_some(), "stage {stage} missing {key}");
        }
    }
    let total = latency.get("total").unwrap();
    assert!(total.get("count").unwrap().as_f64().unwrap() >= 1.0);
    assert!(total.get("p50").unwrap().as_f64().unwrap() > 0.0);

    // The sliding window saw the traffic.
    let window = doc.get("window").unwrap();
    assert_eq!(window.get("window_secs").unwrap().as_f64(), Some(60.0));
    assert!(window.get("requests_per_second").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn prometheus_exposition_is_valid_and_covers_the_service() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let r = post(&addr, "/run", "prom", DAXPY);
    assert_eq!(r.status, 200);

    let prom = get(&addr, "/metrics?format=prometheus");
    assert_eq!(prom.status, 200);
    let families = mt_obs::prom::validate(&prom.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", prom.body));
    for family in [
        "mtserve_requests_total",
        "mtserve_responses_total",
        "mtserve_queue_depth",
        "mtserve_workers",
        "mtserve_service_cycles",
        "mtserve_request_stage_microseconds",
    ] {
        assert!(
            families.iter().any(|f| f == family),
            "missing family {family}\n{}",
            prom.body
        );
    }
    assert!(prom
        .body
        .contains("mtserve_responses_total{status=\"200\"}"));

    // An unknown format is a structured 400, and JSON stays the default.
    assert_eq!(get(&addr, "/metrics?format=xml").status, 400);
    assert!(mt_trace::json::parse(&get(&addr, "/metrics").body).is_ok());
    handle.shutdown();
}

#[test]
fn span_trace_exports_the_request_journey() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // A computed (uncached) request: worker spans included.
    let miss = post(&addr, "/run?span-trace=1", "tr", DAXPY);
    assert_eq!((miss.status, miss.cache.as_deref()), (200, Some("miss")));
    let doc = mt_trace::json::parse(&miss.body).unwrap();
    let trace = doc.get("span_trace").expect("span_trace embedded");
    let rendered = trace.pretty();
    assert!(mt_trace::json::validate(&rendered).is_ok());
    let events = trace.get("traceEvents").unwrap().items();
    for span in [
        "read-request",
        "parse",
        "cache-lookup",
        "queue-wait",
        "worker-service",
        "sim-run",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(span)),
            "missing span {span}: {rendered}"
        );
    }
    // The simulation happened inside the worker's service interval.
    let span_of = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .map(|e| {
                (
                    e.get("ts").unwrap().as_f64().unwrap(),
                    e.get("dur").unwrap().as_f64().unwrap(),
                )
            })
            .unwrap()
    };
    let (w_ts, w_dur) = span_of("worker-service");
    let (s_ts, s_dur) = span_of("sim-run");
    assert!(s_ts >= w_ts && s_ts + s_dur <= w_ts + w_dur + 1.0);

    // A cache hit still gets its own trace — but the stored body stays
    // trace-free: the same job without the flag replays cached bytes
    // with no span_trace field.
    let hit = post(&addr, "/run?span-trace=1", "tr", DAXPY);
    assert_eq!(hit.cache.as_deref(), Some("hit"));
    let hit_doc = mt_trace::json::parse(&hit.body).unwrap();
    assert!(hit_doc.get("span_trace").is_some());
    let plain = post(&addr, "/run", "tr", DAXPY);
    assert_eq!(plain.cache.as_deref(), Some("hit"));
    assert!(
        !plain.body.contains("span_trace"),
        "cache must never store span traces"
    );
    handle.shutdown();
}

#[test]
fn committed_golden_matches_the_computation() {
    // The fixture CI byte-diffs against a live server (`ci` serve smoke):
    // regenerating it must be a no-op as long as the simulator and the
    // response schema are unchanged. Regenerate with:
    //   mtasm client examples/asm/daxpy.s --url http://<addr> --print-body
    let golden = include_str!("data/daxpy_run.golden.json");
    let mut m = mt_sim::Machine::new(mt_sim::SimConfig::default());
    let r = mt_serve::job::execute(
        &mt_serve::JobRequest {
            endpoint: mt_serve::Endpoint::Run,
            source: DAXPY.to_string(),
            options: mt_serve::RunOptions::default(),
        },
        &mut m,
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.body, golden, "golden response drifted");
}

#[test]
fn structured_errors_for_bad_requests() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let bad_asm = post(&addr, "/run", "e", "not an instruction\n");
    assert_eq!(bad_asm.status, 400);
    let doc = mt_trace::json::parse(&bad_asm.body).unwrap();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("assemble"));
    let diag = &doc.get("diagnostics").unwrap().items()[0];
    assert_eq!(diag.get("file").unwrap().as_str(), Some("<request>"));
    assert_eq!(diag.get("line").unwrap().as_f64(), Some(1.0));
    assert!(!bad_asm.body.contains('\x1b'), "no ANSI escapes over HTTP");

    assert_eq!(get(&addr, "/nope").status, 404);
    assert_eq!(post(&addr, "/metrics", "e", "").status, 405);
    assert_eq!(post(&addr, "/run?base=zzz", "e", "halt\n").status, 400);
    handle.shutdown();
}

/// Satellite regression: a thread that panics while holding the
/// result-cache lock used to poison the mutex, after which every later
/// request's cache lookup re-raised the panic in its handler thread —
/// one bad job took the cache path down for the life of the process.
/// The server now recovers the guard, counts the event, and keeps
/// serving (and caching).
#[test]
fn worker_panic_does_not_poison_the_result_cache() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let before = post(&addr, "/run", "p", DAXPY);
    assert_eq!(
        (before.status, before.cache.as_deref()),
        (200, Some("miss"))
    );

    handle.poison_result_cache();

    // The poisoned lock is recovered, and the cached entry replays.
    let hit = post(&addr, "/run", "p", DAXPY);
    assert_eq!((hit.status, hit.cache.as_deref()), (200, Some("hit")));
    assert_eq!(hit.body, before.body);

    // Recovery keeps the cache fully functional: new entries still
    // insert and replay after a second poisoning.
    handle.poison_result_cache();
    let cold = post(&addr, "/run?cold=1", "p", DAXPY);
    assert_eq!((cold.status, cold.cache.as_deref()), (200, Some("miss")));
    let cold_hit = post(&addr, "/run?cold=1", "p", DAXPY);
    assert_eq!(
        (cold_hit.status, cold_hit.cache.as_deref()),
        (200, Some("hit"))
    );

    let doc = mt_trace::json::parse(&get(&addr, "/metrics").body).unwrap();
    let counters = doc.get("registry").unwrap().get("counters").unwrap();
    assert_eq!(counters.get("cache_poisoned").unwrap().as_f64(), Some(2.0));
    handle.shutdown();
}

/// `?backend=` picks the execution backend; both backends produce
/// byte-identical bodies, so they deliberately share cache entries.
#[test]
fn backend_knob_is_parsed_and_shares_the_cache() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let xlate = post(&addr, "/run?backend=xlate", "b", DAXPY);
    assert_eq!((xlate.status, xlate.cache.as_deref()), (200, Some("miss")));
    let tick = post(&addr, "/run?backend=tick", "b", DAXPY);
    assert_eq!(
        (tick.status, tick.cache.as_deref()),
        (200, Some("hit")),
        "bit-identical backends share the result cache"
    );
    assert_eq!(tick.body, xlate.body);
    assert_eq!(post(&addr, "/run?backend=bogus", "b", DAXPY).status, 400);
    handle.shutdown();
}
