//! Scenario kinds, the seeded plan, and per-scenario execution.
//!
//! Every scenario is one self-contained act of client-side misbehavior
//! (or a hook-triggered server-side fault) followed by a local verdict:
//! did the server respond the way a correct implementation must? The
//! cross-scenario properties — healthz, pool strength, accounting —
//! are checked by [`crate::campaign`], not here.
//!
//! Scenarios draw any randomness they need (unique source tags, burst
//! widths) from the campaign's one [`SplitMix64`] stream, so the whole
//! campaign is a pure function of the seed.

use std::io::Write;
use std::net::Shutdown;

use mt_fault::SplitMix64;

use crate::httpc::{self, Reply};
use crate::{ChaosConfig, KILL_MARKER, PANIC_MARKER};

/// One kind of injected trouble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// An open-loop burst of concurrent unique jobs — exercises the
    /// queue, 429 rejection, and per-client fairness under pressure.
    Burst,
    /// A connection that dies mid-request-line.
    TornHead,
    /// A full head promising a body, half the body, then a disconnect.
    MidBodyDisconnect,
    /// A valid request whose write side is shut down before the
    /// response is read (`shutdown(Write)` half-close).
    HalfClose,
    /// A head whose `Content-Length` exceeds the server's hard body
    /// cap — must be refused with `413` without reading the body.
    OversizedBody,
    /// A header dribbled byte-by-byte with a long mid-head stall —
    /// the slow-loris probe for the header read deadline.
    SlowLoris,
    /// A job that panics inside the worker (`--chaos-hooks` only);
    /// expects a structured `500 worker-panic` and a rebuilt machine.
    PanicJob,
    /// A job that kills the worker thread outright (`--chaos-hooks`
    /// only); expects `500 worker-lost` and a supervisor respawn.
    KillWorker,
    /// A job whose deadline is already burned at admission; expects a
    /// `503 deadline-exceeded` shed that never occupies a worker.
    DeadlineShed,
    /// A long-running job with a short deadline; expects cooperative
    /// cancellation at a simulator checkpoint (`503 deadline-exceeded`).
    DeadlineMidRun,
}

impl ScenarioKind {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Burst => "burst",
            ScenarioKind::TornHead => "torn-head",
            ScenarioKind::MidBodyDisconnect => "mid-body-disconnect",
            ScenarioKind::HalfClose => "half-close",
            ScenarioKind::OversizedBody => "oversized-body",
            ScenarioKind::SlowLoris => "slow-loris",
            ScenarioKind::PanicJob => "panic-job",
            ScenarioKind::KillWorker => "kill-worker",
            ScenarioKind::DeadlineShed => "deadline-shed",
            ScenarioKind::DeadlineMidRun => "deadline-mid-run",
        }
    }
}

/// The kinds a hooks-off campaign may draw.
const SAFE_MENU: [ScenarioKind; 8] = [
    ScenarioKind::Burst,
    ScenarioKind::TornHead,
    ScenarioKind::MidBodyDisconnect,
    ScenarioKind::HalfClose,
    ScenarioKind::OversizedBody,
    ScenarioKind::SlowLoris,
    ScenarioKind::DeadlineShed,
    ScenarioKind::DeadlineMidRun,
];

/// The extra kinds unlocked by `--chaos-hooks`.
const HOOKED_MENU: [ScenarioKind; 2] = [ScenarioKind::PanicJob, ScenarioKind::KillWorker];

/// Draws the scenario sequence for a campaign. Pure in `(seed,
/// scenarios, hooks)` — the reproducibility contract.
pub fn plan(seed: u64, scenarios: usize, hooks: bool) -> Vec<ScenarioKind> {
    let mut menu: Vec<ScenarioKind> = SAFE_MENU.to_vec();
    if hooks {
        menu.extend_from_slice(&HOOKED_MENU);
    }
    let mut rng = SplitMix64::new(seed);
    (0..scenarios)
        .map(|_| menu[rng.below(menu.len() as u64) as usize])
        .collect()
}

/// What one scenario did and how it judged the server's reaction.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Local verdict: the server reacted the way a correct one must.
    pub ok: bool,
    /// One-line human note for the report/log.
    pub note: String,
    /// True iff this scenario injected a caught worker panic.
    pub injected_panic: bool,
    /// True iff this scenario injected a worker-thread death.
    pub injected_kill: bool,
}

impl ScenarioOutcome {
    fn plain(ok: bool, note: impl Into<String>) -> ScenarioOutcome {
        ScenarioOutcome {
            ok,
            note: note.into(),
            injected_panic: false,
            injected_kill: false,
        }
    }
}

/// A tiny unique program: distinct tags defeat the response cache so
/// every scenario's job really reaches a worker.
fn tagged_source(rng: &mut SplitMix64) -> String {
    format!("li r9, {}\nhalt\n", rng.below(1 << 20))
}

/// An unbounded spin with a unique tag — only ends via cycle limit,
/// deadline, or drain cancellation.
fn spin_source(rng: &mut SplitMix64) -> String {
    format!(
        "li r9, {}\nspin:\nbeq r0, r0, spin\nhalt\n",
        rng.below(1 << 20)
    )
}

/// Runs one scenario against the target.
pub fn execute(kind: ScenarioKind, cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    match kind {
        ScenarioKind::Burst => burst(cfg, rng),
        ScenarioKind::TornHead => torn_head(cfg),
        ScenarioKind::MidBodyDisconnect => mid_body_disconnect(cfg),
        ScenarioKind::HalfClose => half_close(cfg, rng),
        ScenarioKind::OversizedBody => oversized_body(cfg),
        ScenarioKind::SlowLoris => slow_loris(cfg),
        ScenarioKind::PanicJob => panic_job(cfg, rng),
        ScenarioKind::KillWorker => kill_worker(cfg, rng),
        ScenarioKind::DeadlineShed => deadline_shed(cfg, rng),
        ScenarioKind::DeadlineMidRun => deadline_mid_run(cfg, rng),
    }
}

fn burst(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    // 4..=9 concurrent unique jobs; sources are drawn *before* the
    // threads spawn so the RNG consumption stays deterministic.
    let width = 4 + rng.below(6) as usize;
    let sources: Vec<String> = (0..width).map(|_| tagged_source(rng)).collect();
    let replies: Vec<Result<Reply, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter()
            .map(|src| scope.spawn(|| httpc::post(&cfg.addr, "/run", src.as_bytes())))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Under pressure every job must still end in a *structured* answer:
    // 200 (served), 429 (queue full), or 503 (shed/overloaded).
    let mut bad = Vec::new();
    for reply in &replies {
        match reply {
            Ok(r) if matches!(r.status, 200 | 429 | 503) => {}
            Ok(r) => bad.push(format!("status {}", r.status)),
            Err(e) => bad.push(e.clone()),
        }
    }
    ScenarioOutcome::plain(
        bad.is_empty(),
        if bad.is_empty() {
            format!("{width} concurrent jobs all answered")
        } else {
            format!("burst of {width}: {}", bad.join("; "))
        },
    )
}

fn torn_head(cfg: &ChaosConfig) -> ScenarioOutcome {
    match httpc::connect(&cfg.addr) {
        Ok(mut stream) => {
            // Write part of the request line and vanish. Any write
            // error is fine — the point is the *server's* recovery.
            let _ = stream.write_all(b"POST /run HTT");
            drop(stream);
            ScenarioOutcome::plain(true, "request line torn mid-token")
        }
        Err(e) => ScenarioOutcome::plain(false, e),
    }
}

fn mid_body_disconnect(cfg: &ChaosConfig) -> ScenarioOutcome {
    match httpc::connect(&cfg.addr) {
        Ok(mut stream) => {
            let _ = write!(
                stream,
                "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: 64\r\n\
                 Connection: close\r\n\r\nli r9,",
                cfg.addr
            );
            drop(stream);
            ScenarioOutcome::plain(true, "promised 64 body bytes, sent 6, disconnected")
        }
        Err(e) => ScenarioOutcome::plain(false, e),
    }
}

fn half_close(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    let source = tagged_source(rng);
    let stream = match httpc::connect(&cfg.addr) {
        Ok(s) => s,
        Err(e) => return ScenarioOutcome::plain(false, e),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return ScenarioOutcome::plain(false, e.to_string()),
    };
    let _ = write!(
        writer,
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        cfg.addr,
        source.len()
    );
    let _ = writer.write_all(source.as_bytes());
    // FIN the write side: a correct server still answers the complete
    // request it already holds.
    let _ = stream.shutdown(Shutdown::Write);
    match httpc::read_reply(stream) {
        Ok(r) if r.status == 200 => ScenarioOutcome::plain(true, "served 200 after half-close"),
        Ok(r) => ScenarioOutcome::plain(false, format!("half-close answered {}", r.status)),
        Err(e) => ScenarioOutcome::plain(false, format!("half-close: {e}")),
    }
}

fn oversized_body(cfg: &ChaosConfig) -> ScenarioOutcome {
    let stream = match httpc::connect(&cfg.addr) {
        Ok(s) => s,
        Err(e) => return ScenarioOutcome::plain(false, e),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return ScenarioOutcome::plain(false, e.to_string()),
    };
    // 2 MiB claimed, zero sent: the server must refuse on the header
    // alone instead of waiting for a body that never comes.
    let _ = write!(
        writer,
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: 2097152\r\nConnection: close\r\n\r\n",
        cfg.addr
    );
    match httpc::read_reply(stream) {
        Ok(r) if r.status == 413 => ScenarioOutcome::plain(true, "413 on claimed 2 MiB body"),
        Ok(r) => ScenarioOutcome::plain(false, format!("oversized body answered {}", r.status)),
        Err(e) => ScenarioOutcome::plain(false, format!("oversized body: {e}")),
    }
}

fn slow_loris(cfg: &ChaosConfig) -> ScenarioOutcome {
    let stream = match httpc::connect(&cfg.addr) {
        Ok(s) => s,
        Err(e) => return ScenarioOutcome::plain(false, e),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return ScenarioOutcome::plain(false, e.to_string()),
    };
    let _ = writer.write_all(b"POST /run HTTP/1.1\r\nHost: loris\r\n");
    std::thread::sleep(cfg.slow_wait);
    let _ = writer.write_all(b"Content-Length: 5\r\nConnection: close\r\n\r\nhalt\n");
    // Either verdict is correct, config-dependent: a 408/closed socket
    // when the stall beat `--header-timeout-ms`, a served request when
    // it did not. The scenario fails only if the server *hangs* — the
    // read below is time-bounded — or answers garbage.
    match httpc::read_reply(stream) {
        Ok(r) if matches!(r.status, 408 | 200 | 400 | 422) => {
            ScenarioOutcome::plain(true, format!("loris answered {}", r.status))
        }
        Ok(r) => ScenarioOutcome::plain(false, format!("loris answered {}", r.status)),
        Err(_) => ScenarioOutcome::plain(true, "loris connection closed by server"),
    }
}

fn panic_job(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    let source = format!("; {PANIC_MARKER}\n{}", tagged_source(rng));
    match httpc::post(&cfg.addr, "/run", source.as_bytes()) {
        Ok(r) if r.status == 500 && r.body.contains("worker-panic") => ScenarioOutcome {
            ok: true,
            note: "500 worker-panic, machine quarantined".to_string(),
            injected_panic: true,
            injected_kill: false,
        },
        Ok(r) => ScenarioOutcome::plain(
            false,
            format!("panic hook answered {} (hooks on the server?)", r.status),
        ),
        Err(e) => ScenarioOutcome::plain(false, format!("panic job: {e}")),
    }
}

fn kill_worker(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    let source = format!("; {KILL_MARKER}\n{}", tagged_source(rng));
    match httpc::post(&cfg.addr, "/run", source.as_bytes()) {
        Ok(r) if r.status == 500 && r.body.contains("worker-lost") => ScenarioOutcome {
            ok: true,
            note: "500 worker-lost, supervisor owes a respawn".to_string(),
            injected_panic: false,
            injected_kill: true,
        },
        Ok(r) => ScenarioOutcome::plain(
            false,
            format!("kill hook answered {} (hooks on the server?)", r.status),
        ),
        Err(e) => ScenarioOutcome::plain(false, format!("kill worker: {e}")),
    }
}

fn deadline_shed(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    // A zero budget is expired on arrival: the job must be shed at
    // admission (or at dequeue) with a structured 503 and must never
    // produce a result.
    let source = tagged_source(rng);
    match httpc::post(&cfg.addr, "/run?deadline-ms=0", source.as_bytes()) {
        Ok(r) if r.status == 503 && r.body.contains("deadline-exceeded") => {
            ScenarioOutcome::plain(true, "503 deadline-exceeded shed")
        }
        Ok(r) => ScenarioOutcome::plain(false, format!("expired deadline answered {}", r.status)),
        Err(e) => ScenarioOutcome::plain(false, format!("deadline shed: {e}")),
    }
}

fn deadline_mid_run(cfg: &ChaosConfig, rng: &mut SplitMix64) -> ScenarioOutcome {
    // A spin that would run ~4G cycles against a 75 ms budget: the
    // worker must notice at a cooperative checkpoint and answer 503
    // long before the cycle limit.
    let source = spin_source(rng);
    let target = "/run?cycles=4000000000&deadline-ms=75";
    match httpc::post(&cfg.addr, target, source.as_bytes()) {
        Ok(r) if r.status == 503 && r.body.contains("deadline-exceeded") => {
            ScenarioOutcome::plain(true, "503 deadline-exceeded mid-run")
        }
        Ok(r) => ScenarioOutcome::plain(false, format!("mid-run deadline answered {}", r.status)),
        Err(e) => ScenarioOutcome::plain(false, format!("deadline mid-run: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_reproducible() {
        let a = plan(0xC4A05, 32, true);
        let b = plan(0xC4A05, 32, true);
        assert_eq!(a, b);
        // A different seed gives a different sequence (overwhelmingly).
        assert_ne!(a, plan(0xC4A06, 32, true));
    }

    #[test]
    fn hooks_off_plan_never_draws_hooked_kinds() {
        for seed in 0..64 {
            for kind in plan(seed, 40, false) {
                assert!(
                    !matches!(kind, ScenarioKind::PanicJob | ScenarioKind::KillWorker),
                    "seed {seed} drew {kind:?} without hooks"
                );
            }
        }
    }

    #[test]
    fn hooked_plan_eventually_draws_every_kind() {
        let drawn = plan(0xC4A05, 200, true);
        for kind in SAFE_MENU.iter().chain(HOOKED_MENU.iter()) {
            assert!(drawn.contains(kind), "200 draws never hit {kind:?}");
        }
    }

    #[test]
    fn default_campaign_draw_covers_every_kind() {
        // The committed BENCH_chaos.json baseline runs the default
        // seed; this pins that the default plan exercises the whole
        // menu, hooks included.
        let cfg = crate::ChaosConfig::default();
        let drawn = plan(cfg.seed, cfg.scenarios, true);
        for kind in SAFE_MENU.iter().chain(HOOKED_MENU.iter()) {
            assert!(drawn.contains(kind), "default draw misses {kind:?}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        // The names are report schema; renaming one breaks committed
        // BENCH_chaos.json baselines.
        let names: Vec<&str> = SAFE_MENU
            .iter()
            .chain(HOOKED_MENU.iter())
            .map(|k| k.name())
            .collect();
        assert_eq!(
            names,
            [
                "burst",
                "torn-head",
                "mid-body-disconnect",
                "half-close",
                "oversized-body",
                "slow-loris",
                "deadline-shed",
                "deadline-mid-run",
                "panic-job",
                "kill-worker",
            ]
        );
    }

    #[test]
    fn tagged_sources_are_unique_per_draw() {
        let mut rng = SplitMix64::new(7);
        let a = tagged_source(&mut rng);
        let b = tagged_source(&mut rng);
        assert_ne!(a, b);
        assert!(a.starts_with("li r9, ") && a.ends_with("halt\n"));
    }
}
