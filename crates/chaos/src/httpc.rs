//! A minimal raw-TCP HTTP/1.1 client for the chaos harness.
//!
//! Hand-rolled like the server and `mtasm client`: the workspace takes
//! no dependencies, and chaos scenarios *need* byte-level control of
//! the socket (torn heads, half-closes, mid-body disconnects) that a
//! real client library would hide. Writes are deliberately tolerant —
//! an overloaded or draining server may answer and close before it
//! reads the request, so a failed `write` with a valid response already
//! on the wire is a success, not an error.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mt_trace::json::{self, Json};

/// Socket-level timeout for every read and write. Generous: this is a
/// hang backstop, not a latency assertion.
const IO_TIMEOUT: Duration = Duration::from_secs(20);

/// One parsed response.
#[derive(Debug)]
pub struct Reply {
    pub status: u16,
    pub body: String,
}

/// Connects with both timeouts armed.
pub fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    Ok(stream)
}

/// Reads a status line, headers, and `Content-Length` body from a
/// stream the request has already been written to.
pub fn read_reply(stream: TcpStream) -> Result<Reply, String> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", status_line.trim_end()))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok(Reply {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// One `GET` over a fresh connection.
pub fn get(addr: &str, target: &str) -> Result<Reply, String> {
    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        writer,
        "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("write: {e}"))?;
    read_reply(stream)
}

/// One `POST` over a fresh connection. Write errors are tolerated (see
/// the module doc); only a missing/unreadable *response* is an error.
pub fn post(addr: &str, target: &str, body: &[u8]) -> Result<Reply, String> {
    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let _ = write!(
        writer,
        "POST {target} HTTP/1.1\r\nHost: {addr}\r\nX-Client-Id: chaos\r\n\
         Content-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(body);
    let _ = writer.flush();
    read_reply(stream)
}

/// Fetches and parses the `/metrics` JSON document.
pub fn metrics(addr: &str) -> Result<Json, String> {
    let reply = get(addr, "/metrics")?;
    if reply.status != 200 {
        return Err(format!("/metrics answered {}", reply.status));
    }
    json::parse(&reply.body).map_err(|e| format!("/metrics parse: {e}"))
}

/// Looks up a numeric field by dot-path in a JSON document.
pub fn field_u64(doc: &Json, path: &[&str]) -> Option<u64> {
    let mut node = doc;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64().map(|f| f as u64)
}
