//! The campaign driver: run the seeded scenario plan against a live
//! server and verify the service-level recovery properties.
//!
//! Between scenarios the driver insists the server *quiesces* (no busy
//! workers, an empty queue) and still answers `GET /healthz`; after a
//! worker kill it additionally waits for the supervisor's respawn so
//! the next scenario meets a full-strength pool. The final sweep checks
//! the global properties one scenario alone cannot: the accounting
//! partition balances, every injected kill was matched by a respawn,
//! and a trivial job still runs to a bit-normal `200`.

use std::time::{Duration, Instant};

use mt_fault::SplitMix64;
use mt_trace::Json;

use crate::httpc::{self, field_u64};
use crate::scenario::{self, ScenarioKind};
use crate::ChaosConfig;

/// The finished campaign: the `mt-chaos-v1` report and a pass verdict.
#[derive(Debug)]
pub struct CampaignReport {
    /// The `mt-chaos-v1` JSON document.
    pub json: Json,
    /// True iff every scenario and every final check passed.
    pub ok: bool,
}

/// One scenario's report row.
struct Row {
    kind: ScenarioKind,
    ok: bool,
    note: String,
}

/// Polls `/metrics` until the server is quiescent (no busy workers, an
/// empty queue). Returns an error note on timeout.
fn wait_quiesce(cfg: &ChaosConfig) -> Result<(), String> {
    let deadline = Instant::now() + cfg.quiesce_timeout;
    loop {
        if let Ok(doc) = httpc::metrics(&cfg.addr) {
            let busy = field_u64(&doc, &["busy_workers"]).unwrap_or(u64::MAX);
            let depth = field_u64(&doc, &["queue_depth"]).unwrap_or(u64::MAX);
            if busy == 0 && depth == 0 {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err("server never quiesced".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until `registry.counters.worker_respawns` reaches `want`, so a
/// killed worker is back before the next scenario leans on the pool.
fn wait_respawns(cfg: &ChaosConfig, want: u64) -> Result<(), String> {
    let deadline = Instant::now() + cfg.quiesce_timeout;
    loop {
        if let Ok(doc) = httpc::metrics(&cfg.addr) {
            if respawn_count(&doc) >= want {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("supervisor never reached {want} respawn(s)"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn respawn_count(metrics: &Json) -> u64 {
    field_u64(metrics, &["registry", "counters", "worker_respawns"]).unwrap_or(0)
}

fn healthz_ok(cfg: &ChaosConfig) -> bool {
    matches!(httpc::get(&cfg.addr, "/healthz"), Ok(r) if r.status == 200)
}

/// Runs the full campaign. `Err` means the harness could not even talk
/// to the server; every in-protocol failure lands in the report with
/// `ok: false` instead.
pub fn run_campaign(cfg: &ChaosConfig) -> Result<CampaignReport, String> {
    let started = Instant::now();
    if !healthz_ok(cfg) {
        return Err(format!(
            "{}: /healthz not answering before campaign",
            cfg.addr
        ));
    }
    let baseline = httpc::metrics(&cfg.addr)?;
    let respawns_before = respawn_count(&baseline);

    let kinds = scenario::plan(cfg.seed, cfg.scenarios, cfg.expect_hooks);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5CEA_A210); // distinct stream from the plan's
    let mut rows = Vec::new();
    let (mut panics, mut kills) = (0u64, 0u64);
    for kind in kinds {
        let outcome = scenario::execute(kind, cfg, &mut rng);
        panics += outcome.injected_panic as u64;
        kills += outcome.injected_kill as u64;
        let mut ok = outcome.ok;
        let mut note = outcome.note;
        // The liveness contract holds after *every* scenario, not just
        // at the end: healthz answers and the service drains back to
        // idle. A kill additionally owes a respawn before we move on.
        if !healthz_ok(cfg) {
            ok = false;
            note = format!("{note}; /healthz dead after scenario");
        } else if let Err(e) = wait_quiesce(cfg) {
            ok = false;
            note = format!("{note}; {e}");
        } else if outcome.injected_kill {
            if let Err(e) = wait_respawns(cfg, respawns_before + kills) {
                ok = false;
                note = format!("{note}; {e}");
            }
        }
        rows.push(Row { kind, ok, note });
    }

    // Final sweep. Pool strength is proven by *serving*, not just by
    // liveness: a fresh unique job must still come back 200.
    let final_healthz = healthz_ok(cfg);
    let probe = format!("li r9, {}\nhalt\n", rng.below(1 << 20));
    let pool_alive = matches!(
        httpc::post(&cfg.addr, "/run", probe.as_bytes()),
        Ok(r) if r.status == 200
    );
    let quiesced = wait_quiesce(cfg).is_ok();
    let metrics = httpc::metrics(&cfg.addr)?;
    let acct = |k: &str| field_u64(&metrics, &["accounting", k]).unwrap_or(u64::MAX);
    let (accepted, completed, rejected, shed, failed) = (
        acct("accepted"),
        acct("completed"),
        acct("rejected"),
        acct("shed"),
        acct("failed"),
    );
    let invariant_ok = quiesced && accepted == completed + rejected + shed + failed;
    let respawns_after = respawn_count(&metrics);
    let respawns_match = respawns_after == respawns_before + kills;

    let scenarios_ok = rows.iter().filter(|r| r.ok).count();
    let all_scenarios_ok = scenarios_ok == rows.len();
    let all_ok = all_scenarios_ok && final_healthz && pool_alive && invariant_ok && respawns_match;

    let scenarios = Json::Arr(
        rows.iter()
            .enumerate()
            .map(|(i, r)| {
                Json::obj([
                    ("index", Json::U64(i as u64)),
                    ("kind", Json::Str(r.kind.name().to_string())),
                    ("ok", Json::Bool(r.ok)),
                    ("note", Json::Str(r.note.clone())),
                ])
            })
            .collect(),
    );
    let json = Json::obj([
        ("schema", Json::Str("mt-chaos-v1".to_string())),
        ("seed", Json::Str(format!("{:#x}", cfg.seed))),
        ("chaos_hooks", Json::Bool(cfg.expect_hooks)),
        ("scenarios_total", Json::U64(rows.len() as u64)),
        ("scenarios_ok", Json::U64(scenarios_ok as u64)),
        ("scenarios", scenarios),
        (
            "injected",
            Json::obj([("panics", Json::U64(panics)), ("kills", Json::U64(kills))]),
        ),
        (
            "checks",
            Json::obj([
                ("healthz_ok", Json::Bool(final_healthz)),
                ("pool_alive", Json::Bool(pool_alive)),
                ("invariant_ok", Json::Bool(invariant_ok)),
                ("respawns_match", Json::Bool(respawns_match)),
                ("all_ok", Json::Bool(all_ok)),
            ]),
        ),
        (
            "accounting",
            Json::obj([
                ("accepted", Json::U64(accepted)),
                ("completed", Json::U64(completed)),
                ("rejected", Json::U64(rejected)),
                ("shed", Json::U64(shed)),
                ("failed", Json::U64(failed)),
            ]),
        ),
        (
            "elapsed_ms",
            Json::U64(started.elapsed().as_millis() as u64),
        ),
    ]);
    Ok(CampaignReport { json, ok: all_ok })
}
