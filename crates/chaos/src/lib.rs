//! `mt-chaos` — a seeded, service-level chaos harness for `mt-serve`.
//!
//! The serve crate's unit and e2e tests each poke one failure mode in
//! isolation; this crate replays a whole *campaign* of them against a
//! live server, in a pseudo-random but reproducible order, and checks
//! the properties that only hold if every recovery path actually works:
//!
//! * after **every** scenario the server still answers `GET /healthz`;
//! * the worker pool never shrinks — every injected worker death is
//!   matched by a supervisor respawn (`worker_respawns` in `/metrics`);
//! * the accounting partition balances at quiescence:
//!   `accepted == completed + rejected + shed + failed`;
//! * a trivial job still runs to a `200` at the end (the pool is not
//!   just alive but *serving*).
//!
//! Reproducibility follows the `mt-fault` contract: the scenario
//! sequence is a pure function of `(seed, scenarios, hooks)` drawn from
//! the same [`SplitMix64`] generator, so a CI failure is re-runnable
//! bit-for-bit with the printed seed. The report's *structural* fields
//! (schema, seed, scenario kinds, check verdicts) are deterministic;
//! wall-clock and load-race fields (`elapsed_ms`, raw accounting
//! counts) are tolerated by the `chaos` benchdiff profile.
//!
//! Two failure kinds — [`scenario::ScenarioKind::PanicJob`] and
//! [`scenario::ScenarioKind::KillWorker`] — need the server's opt-in
//! chaos hooks (`--chaos-hooks`); a hooks-off plan simply never draws
//! them, so `mtasm chaos` is safe to point at any server.
//!
//! Drive it with `repro-chaos` (spawns an in-process hooked server) or
//! `mtasm chaos --url ...` (attacks a server you already run).

pub mod campaign;
pub mod httpc;
pub mod scenario;

use std::time::Duration;

pub use campaign::{run_campaign, CampaignReport};
pub use mt_fault::SplitMix64;
pub use scenario::{plan, ScenarioKind};

/// The chaos hook markers `mt-serve` recognizes in job sources.
///
/// Private copies: `mt-chaos` deliberately does not depend on
/// `mt-serve` (the `mtasm` binary links both, and `mt-serve` sits
/// downstream of `mt-asm`), and the strings are a wire protocol, not an
/// implementation detail — `crates/serve/src/server.rs` pins them with
/// constants of the same value.
pub const PANIC_MARKER: &str = "CHAOS-PANIC-WORKER";
/// See [`PANIC_MARKER`]; this one kills the worker thread outright.
pub const KILL_MARKER: &str = "CHAOS-KILL-WORKER";

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// `host:port` of the target server.
    pub addr: String,
    /// Seed for the scenario plan (and all per-scenario randomness).
    pub seed: u64,
    /// Number of scenarios to run.
    pub scenarios: usize,
    /// Whether the target was started with `--chaos-hooks`. When false
    /// the plan never draws `PanicJob`/`KillWorker`.
    pub expect_hooks: bool,
    /// How long to wait for the server to quiesce (no busy workers, an
    /// empty queue) between scenarios before declaring it wedged.
    pub quiesce_timeout: Duration,
    /// How long the slow-loris scenario stalls mid-header. Point this
    /// past the server's `--header-timeout-ms` to exercise the defense;
    /// shorter stalls still verify the server survives a dribbled head.
    pub slow_wait: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            addr: "127.0.0.1:8315".to_string(),
            // The default draw covers all ten scenario kinds (checked
            // by a unit test) — CI's committed baseline exercises the
            // whole menu.
            seed: 0xC4A19,
            scenarios: 14,
            expect_hooks: false,
            quiesce_timeout: Duration::from_secs(30),
            slow_wait: Duration::from_millis(600),
        }
    }
}
