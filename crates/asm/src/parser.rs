//! The two-pass text assembler.
//!
//! Syntax summary (one instruction per line; `;` or `#` start a comment):
//!
//! ```text
//! loop:                        ; labels end with ':'
//!     li    r1, 0x2000         ; integer registers are lowercase r0..r31
//!     fld   R0, 0(r1)          ; FPU registers are uppercase R0..R51
//!     fadd  R8..R11, R0..R3, R4..R7   ; register ranges stride (VL = 4)
//!     fmul  R16..R19, R0..R3, R32     ; a plain source broadcasts (SRb = 0)
//!     fdiv  R2, R0, R1, R48, R49      ; macro: 6-op Newton–Raphson divide
//!     fldv  R0..R7, 0(r1), 16         ; pseudo: 8 strided loads (Fig. 9)
//!     addi  r1, r1, 8
//!     blt   r1, r2, loop
//!     halt
//! ```
//!
//! The destination operand's range length fixes the vector length; each
//! source must be a range of the same length (striding) or a plain register
//! (scalar broadcast).

use std::collections::HashMap;

use mt_fparith::FpOp;
use mt_isa::cpu::{AluOp, BranchCond};
use mt_isa::{FReg, IReg};
use mt_sim::Program;

use crate::builder::{Asm, Label};
use crate::error::AsmError;
use crate::span::{SourceMap, SourceSpan};
use mt_sim::DataSegment;

/// An FPU register operand: plain or a striding range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FOperand {
    first: FReg,
    /// `None` for a plain (non-striding) register; `Some(len)` for a range.
    len: Option<u8>,
}

/// Assembles source text into a [`Program`] at `base`.
///
/// # Errors
///
/// Returns the first syntax, validation, or label error with its 1-based
/// source line.
pub fn parse(source: &str, base: u32) -> Result<Program, AsmError> {
    Ok(parse_with_source_map(source, base)?.0)
}

/// Like [`parse`], also returning a [`SourceMap`] carrying each
/// instruction's source span and any `lint: allow(...)` comment
/// annotations — the glue `mtasm lint` uses for rustc-style diagnostics.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_source_map(source: &str, base: u32) -> Result<(Program, SourceMap), AsmError> {
    let mut asm = Asm::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: Vec<String> = Vec::new();
    let mut segments: Vec<DataSegment> = Vec::new();
    let mut current_seg: Option<DataSegment> = None;
    let mut allows: HashMap<usize, Vec<String>> = HashMap::new();

    let mut get_label = |asm: &mut Asm, name: &str| -> Label {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| asm.label())
    };

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some((_, comment)) = raw.split_once([';', '#']) {
            let rules = crate::span::parse_allow_annotation(comment);
            if !rules.is_empty() {
                allows.entry(lineno).or_default().extend(rules);
            }
        }
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Data directives.
        if let Some(rest) = line.strip_prefix('.') {
            parse_directive(rest, lineno, &mut segments, &mut current_seg)?;
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if !is_ident(name) {
                break;
            }
            let l = get_label(&mut asm, name);
            if bound.contains(&name.to_string()) {
                return Err(AsmError::at(
                    lineno,
                    format!("label `{name}` defined twice"),
                ));
            }
            asm.bind(l);
            bound.push(name.to_string());
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        // `rest` is a subslice of `raw`, so its byte offset is the column.
        let col = rest.as_ptr() as usize - raw.as_ptr() as usize + 1;
        asm.set_span(Some(SourceSpan {
            line: lineno,
            col,
            len: rest.len(),
        }));
        parse_instruction(rest, lineno, &mut asm, &mut get_label)?;
    }

    // Every referenced label must have been bound.
    for (name, _) in labels.iter() {
        if !bound.contains(name) {
            return Err(AsmError::new(format!("label `{name}` is never defined")));
        }
    }

    if let Some(seg) = current_seg.take() {
        segments.push(seg);
    }
    let (mut program, spans) = asm.assemble_with_spans(base)?;
    program.segments = segments;
    let map = SourceMap::new(spans, source, allows);
    Ok((program, map))
}

/// Parses one `.directive` line: `.data <addr>` opens a segment;
/// `.double` and `.word` append values to it.
fn parse_directive(
    rest: &str,
    lineno: usize,
    segments: &mut Vec<DataSegment>,
    current: &mut Option<DataSegment>,
) -> Result<(), AsmError> {
    let (name, args) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    match name {
        "data" => {
            if let Some(seg) = current.take() {
                segments.push(seg);
            }
            let addr = imm(args, lineno)? as u32;
            *current = Some(DataSegment {
                base: addr,
                bytes: Vec::new(),
            });
        }
        "double" => {
            let seg = current
                .as_mut()
                .ok_or_else(|| AsmError::at(lineno, "`.double` before `.data`".to_string()))?;
            for v in args.split(',') {
                let v = v.trim();
                let value: f64 = v
                    .parse()
                    .map_err(|_| AsmError::at(lineno, format!("bad double `{v}`")))?;
                seg.bytes.extend_from_slice(&value.to_bits().to_le_bytes());
            }
        }
        "word" => {
            let seg = current
                .as_mut()
                .ok_or_else(|| AsmError::at(lineno, "`.word` before `.data`".to_string()))?;
            for v in args.split(',') {
                let value = imm(v.trim(), lineno)? as u32;
                seg.bytes.extend_from_slice(&value.to_le_bytes());
            }
        }
        other => {
            return Err(AsmError::at(
                lineno,
                format!("unknown directive `.{other}`"),
            ))
        }
    }
    Ok(())
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_instruction(
    text: &str,
    lineno: usize,
    asm: &mut Asm,
    get_label: &mut impl FnMut(&mut Asm, &str) -> Label,
) -> Result<(), AsmError> {
    let err = |m: String| AsmError::at(lineno, m);
    let (mnemonic, operand_text) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if operand_text.is_empty() {
        Vec::new()
    } else {
        operand_text.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` expects {n} operands, got {}",
                ops.len()
            )))
        }
    };

    match mnemonic {
        "nop" => {
            want(0)?;
            asm.nop();
        }
        "halt" => {
            want(0)?;
            asm.halt();
        }
        "mfpsw" => {
            want(1)?;
            asm.instr(mt_isa::Instr::Mfpsw {
                rd: ireg(ops[0], lineno)?,
            });
        }
        "clrpsw" => {
            want(0)?;
            asm.instr(mt_isa::Instr::ClrPsw);
        }
        m if AluOp::from_mnemonic(m).is_some() => {
            want(3)?;
            asm.alu(
                AluOp::from_mnemonic(m).unwrap(),
                ireg(ops[0], lineno)?,
                ireg(ops[1], lineno)?,
                ireg(ops[2], lineno)?,
            );
        }
        "addi" => {
            want(3)?;
            asm.addi(
                ireg(ops[0], lineno)?,
                ireg(ops[1], lineno)?,
                imm(ops[2], lineno)?,
            );
        }
        "li" => {
            want(2)?;
            asm.li(ireg(ops[0], lineno)?, imm(ops[1], lineno)?);
        }
        "lui" => {
            want(2)?;
            let v = imm(ops[1], lineno)?;
            asm.instr(mt_isa::Instr::Lui {
                rd: ireg(ops[0], lineno)?,
                imm: v as u32,
            });
        }
        "lw" | "sw" => {
            want(2)?;
            let r = ireg(ops[0], lineno)?;
            let (offset, base) = mem_operand(ops[1], lineno)?;
            if mnemonic == "lw" {
                asm.lw(r, base, offset);
            } else {
                asm.sw(r, base, offset);
            }
        }
        "fld" | "fst" => {
            want(2)?;
            let r = freg(ops[0], lineno)?;
            let (offset, base) = mem_operand(ops[1], lineno)?;
            if mnemonic == "fld" {
                asm.fld(r, base, offset);
            } else {
                asm.fst(r, base, offset);
            }
        }
        // Vector load/store pseudo-instructions: expand to one scalar
        // load/store per register, the stride folded into the offsets
        // (Fig. 9). `fldv R0..R7, 0(r1), 16` loads eight doubles 16 bytes
        // apart.
        "fldv" | "fstv" => {
            want(3)?;
            let range = foperand(ops[0], lineno)?;
            let len = range.len.ok_or_else(|| {
                err(format!(
                    "`{mnemonic}` needs a register range, got `{}`",
                    ops[0]
                ))
            })?;
            let (offset, base) = mem_operand(ops[1], lineno)?;
            let stride = imm(ops[2], lineno)?;
            for i in 0..len {
                let r = FReg::new(range.first.index() + i);
                let off = offset + stride * i as i32;
                if mnemonic == "fldv" {
                    asm.fld(r, base, off);
                } else {
                    asm.fst(r, base, off);
                }
            }
        }
        "fdiv" => {
            want(5)?;
            asm.fdiv(
                freg(ops[0], lineno)?,
                freg(ops[1], lineno)?,
                freg(ops[2], lineno)?,
                freg(ops[3], lineno)?,
                freg(ops[4], lineno)?,
            )
            .map_err(|e| err(e.message))?;
        }
        m if FpOp::from_mnemonic(m).is_some() => {
            let op = FpOp::from_mnemonic(m).unwrap();
            let n = if op.is_unary() { 2 } else { 3 };
            want(n)?;
            let rr = foperand(ops[0], lineno)?;
            let ra = foperand(ops[1], lineno)?;
            let rb = if op.is_unary() {
                FOperand {
                    first: FReg::new(0),
                    len: None,
                }
            } else {
                foperand(ops[2], lineno)?
            };
            let vl = rr.len.unwrap_or(1);
            let check_src = |s: FOperand, which: &str| -> Result<bool, AsmError> {
                match s.len {
                    None => Ok(false),
                    Some(l) if l == vl => Ok(true),
                    Some(l) => Err(err(format!(
                        "{which} range length {l} does not match destination length {vl}"
                    ))),
                }
            };
            let sra = check_src(ra, "Ra")?;
            let srb = check_src(rb, "Rb")?;
            asm.fvector_general(op, rr.first, ra.first, rb.first, vl, sra, srb)
                .map_err(|e| err(e.message))?;
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(3)?;
            let cond = match mnemonic {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            let rs1 = ireg(ops[0], lineno)?;
            let rs2 = ireg(ops[1], lineno)?;
            if !is_ident(ops[2]) {
                return Err(err(format!("expected label, got `{}`", ops[2])));
            }
            let l = get_label(asm, ops[2]);
            asm.branch(cond, rs1, rs2, l);
        }
        "j" | "jal" => {
            want(1)?;
            if !is_ident(ops[0]) {
                return Err(err(format!("expected label, got `{}`", ops[0])));
            }
            let l = get_label(asm, ops[0]);
            if mnemonic == "j" {
                asm.j(l);
            } else {
                asm.jal(l);
            }
        }
        "jr" => {
            want(1)?;
            asm.jr(ireg(ops[0], lineno)?);
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

fn ireg(s: &str, lineno: usize) -> Result<IReg, AsmError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(IReg::try_new)
        .ok_or_else(|| {
            AsmError::at(
                lineno,
                format!("expected integer register r0..r31, got `{s}`"),
            )
        })
}

fn freg(s: &str, lineno: usize) -> Result<FReg, AsmError> {
    s.strip_prefix('R')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(FReg::try_new)
        .ok_or_else(|| AsmError::at(lineno, format!("expected FPU register R0..R51, got `{s}`")))
}

fn foperand(s: &str, lineno: usize) -> Result<FOperand, AsmError> {
    if let Some((lo, hi)) = s.split_once("..") {
        let first = freg(lo.trim(), lineno)?;
        let last = freg(hi.trim(), lineno)?;
        if last.index() < first.index() {
            return Err(AsmError::at(
                lineno,
                format!("descending register range `{s}`"),
            ));
        }
        let len = last.index() - first.index() + 1;
        if len > 16 {
            return Err(AsmError::at(
                lineno,
                format!("range `{s}` longer than the maximum vector length 16"),
            ));
        }
        Ok(FOperand {
            first,
            len: Some(len),
        })
    } else {
        Ok(FOperand {
            first: freg(s, lineno)?,
            len: None,
        })
    }
}

fn imm(s: &str, lineno: usize) -> Result<i32, AsmError> {
    let parse = |t: &str, neg: bool| -> Option<i32> {
        let v = if let Some(hex) = t.strip_prefix("0x") {
            i64::from_str_radix(hex, 16).ok()?
        } else {
            t.parse::<i64>().ok()?
        };
        let v = if neg { -v } else { v };
        i32::try_from(v).ok().or(
            // Allow unsigned 32-bit hex constants like 0xFFFFC000.
            if !neg {
                u32::try_from(v).ok().map(|u| u as i32)
            } else {
                None
            },
        )
    };
    let (t, neg) = match s.strip_prefix('-') {
        Some(rest) => (rest, true),
        None => (s, false),
    };
    parse(t, neg).ok_or_else(|| AsmError::at(lineno, format!("bad immediate `{s}`")))
}

fn mem_operand(s: &str, lineno: usize) -> Result<(i32, IReg), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| AsmError::at(lineno, format!("expected `offset(base)`, got `{s}`")))?;
    let close = s
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::at(lineno, format!("unclosed memory operand `{s}`")))?;
    let offset_text = s[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        imm(offset_text, lineno)?
    };
    let base = ireg(s[open + 1..close].trim(), lineno)?;
    Ok((offset, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_isa::Instr;
    use mt_sim::{Machine, SimConfig};

    fn run_source(src: &str) -> Machine {
        let p = parse(src, 0x1_0000).expect("assembles");
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        m.warm_instructions(&p);
        m.run().expect("halts");
        m
    }

    #[test]
    fn scalar_program_end_to_end() {
        let m = run_source(
            r"
            ; add two constants through memory
            li   r1, 0x2000
            li   r2, 3
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            addi r3, r3, 39
            halt
            ",
        );
        assert_eq!(m.ireg(IReg::new(3)), 42);
    }

    #[test]
    fn vector_range_syntax() {
        let p = parse("fadd R8..R11, R0..R3, R4..R7\nhalt\n", 0x1_0000).unwrap();
        match Instr::decode(p.words[0]).unwrap() {
            Instr::Falu(f) => {
                assert_eq!(f.vl, 4);
                assert!(f.sra && f.srb);
                assert_eq!(f.rr.index(), 8);
            }
            other => panic!("expected falu, got {other}"),
        }
    }

    #[test]
    fn broadcast_source_is_plain_register() {
        let p = parse("fmul R16..R19, R0..R3, R32\nhalt\n", 0x1_0000).unwrap();
        match Instr::decode(p.words[0]).unwrap() {
            Instr::Falu(f) => {
                assert!(f.sra);
                assert!(!f.srb);
                assert_eq!(f.rb.index(), 32);
            }
            other => panic!("expected falu, got {other}"),
        }
    }

    #[test]
    fn unary_ops_take_two_operands() {
        let p = parse(
            "frecip R5, R6\nfloat R1, R2\ntrunc R3, R4\nhalt\n",
            0x1_0000,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn loop_with_labels() {
        let m = run_source(
            r"
            li   r1, 0
            li   r2, 10
            loop: addi r1, r1, 1
            blt  r1, r2, loop
            halt
            ",
        );
        assert_eq!(m.ireg(IReg::new(1)), 10);
    }

    #[test]
    fn fibonacci_via_text() {
        let m = run_source(
            r"
            li   r1, 0x2000
            fld  R0, 0(r1)       ; 1.0
            fld  R1, 8(r1)       # also 1.0 — both comment styles
            fadd R2..R9, R1..R8, R0..R7
            halt
            ",
        );
        // Memory was zero; loads gave 0.0 — rewrite with real data instead.
        let _ = m;
        let p = parse("fadd R2..R9, R1..R8, R0..R7\nhalt\n", 0x1_0000).unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        m.warm_instructions(&p);
        m.fpu.regs_mut().write_f64(FReg::new(0), 1.0);
        m.fpu.regs_mut().write_f64(FReg::new(1), 1.0);
        m.run().unwrap();
        assert_eq!(m.fpu.regs().read_f64(FReg::new(9)), 55.0);
    }

    #[test]
    fn fdiv_macro_in_text() {
        let p = parse("fdiv R2, R0, R1, R48, R49\nhalt\n", 0x1_0000).unwrap();
        assert_eq!(p.len(), 7);
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        m.warm_instructions(&p);
        m.fpu.regs_mut().write_f64(FReg::new(0), 1.0);
        m.fpu.regs_mut().write_f64(FReg::new(1), 8.0);
        m.run().unwrap();
        assert_eq!(m.fpu.regs().read_f64(FReg::new(2)), 0.125);
    }

    #[test]
    fn fldv_fstv_expand_to_strided_scalars() {
        let p = parse(
            "fldv R0..R3, 8(r1), 16\nfstv R0..R3, 0(r2), 8\nhalt\n",
            0x1_0000,
        )
        .unwrap();
        assert_eq!(p.len(), 9, "4 loads + 4 stores + halt");
        match Instr::decode(p.words[1]).unwrap() {
            Instr::Fld { offset, .. } => assert_eq!(offset, 24, "8 + 1·16"),
            other => panic!("expected fld, got {other}"),
        }
        match Instr::decode(p.words[7]).unwrap() {
            Instr::Fst { offset, .. } => assert_eq!(offset, 24, "0 + 3·8"),
            other => panic!("expected fst, got {other}"),
        }
    }

    #[test]
    fn fldv_requires_a_range() {
        let e = parse("fldv R0, 0(r1), 8\n", 0).unwrap_err();
        assert!(e.message.contains("needs a register range"));
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = parse("frobnicate r1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn error_bad_register() {
        let e = parse("addi r32, r0, 1\n", 0).unwrap_err();
        assert!(e.message.contains("integer register"));
        let e = parse("fadd R52, R0, R1\n", 0).unwrap_err();
        assert!(e.message.contains("FPU register"));
    }

    #[test]
    fn error_mismatched_range_lengths() {
        let e = parse("fadd R8..R11, R0..R2, R4..R7\n", 0).unwrap_err();
        assert!(e.message.contains("does not match destination length"));
    }

    #[test]
    fn error_undefined_label() {
        let e = parse("j nowhere\nhalt\n", 0).unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn error_duplicate_label() {
        let e = parse("x:\nnop\nx:\nhalt\n", 0).unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn error_operand_counts() {
        let e = parse("fadd R1, R2\n", 0).unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
        let e = parse("frecip R1, R2, R3\n", 0).unwrap_err();
        assert!(e.message.contains("expects 2 operands"));
    }

    #[test]
    fn error_descending_range() {
        let e = parse("fadd R8..R5, R0..R3, R4..R7\n", 0).unwrap_err();
        assert!(e.message.contains("descending"));
    }

    #[test]
    fn error_range_too_long() {
        let e = parse("fadd R0..R16, R17..R33, R34..R50\n", 0).unwrap_err();
        assert!(e.message.contains("maximum vector length"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let m = run_source("li r1, 0x10\nli r2, -16\nhalt\n");
        assert_eq!(m.ireg(IReg::new(1)), 16);
        assert_eq!(m.ireg(IReg::new(2)), -16);
    }

    #[test]
    fn label_and_instruction_on_same_line() {
        let m = run_source("start: li r1, 7\nhalt\n");
        assert_eq!(m.ireg(IReg::new(1)), 7);
    }

    #[test]
    fn data_directives_produce_segments() {
        let p = parse(
            "
            .data 0x2000
            .double 1.5, -2.25
            .word 42, 0x10
            .data 0x3000
            .double 9.0
            li r1, 0x2000
            fld R0, 0(r1)
            halt
            ",
            0x1_0000,
        )
        .unwrap();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].base, 0x2000);
        assert_eq!(p.segments[0].bytes.len(), 24);
        assert_eq!(p.segments[1].base, 0x3000);

        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        assert_eq!(m.mem.memory.read_f64(0x2000), 1.5);
        assert_eq!(m.mem.memory.read_f64(0x2008), -2.25);
        assert_eq!(m.mem.memory.read_u32(0x2010), 42);
        assert_eq!(m.mem.memory.read_u32(0x2014), 0x10);
        assert_eq!(m.mem.memory.read_f64(0x3000), 9.0);
        m.run().unwrap();
        assert_eq!(m.fpu.regs().read_f64(FReg::new(0)), 1.5);
    }

    #[test]
    fn data_directive_errors() {
        assert!(parse(".double 1.0\n", 0)
            .unwrap_err()
            .message
            .contains("before `.data`"));
        assert!(parse(".word 1\n", 0)
            .unwrap_err()
            .message
            .contains("before `.data`"));
        assert!(parse(".bogus 1\n", 0)
            .unwrap_err()
            .message
            .contains("unknown directive"));
        assert!(parse(".data 0x100\n.double oops\n", 0)
            .unwrap_err()
            .message
            .contains("bad double"));
    }
}
