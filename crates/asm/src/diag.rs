//! Plain structured diagnostics: file/line/col/message with no styling.
//!
//! [`SourceMap::render`] produces rustc-style output — gutters, carets,
//! the quoted source line — which is right for a terminal and wrong for
//! everything else: an HTTP response, a JSON document, an editor that
//! wants `file:line:col` to jump to. [`PlainDiagnostic`] is the
//! machine-face of the same information: one flat record per finding,
//! rendered either as a single `file:line:col: severity[code]: message`
//! line or as a JSON object, with nothing to strip on the consumer side.

use std::fmt;

use mt_lint::Finding;
use mt_trace::Json;

use crate::error::AsmError;
use crate::span::SourceMap;

/// One diagnostic as a flat record. `line`/`col` are 1-based; both are 0
/// when the location is unknown (builder-level assembly errors, findings
/// on instructions with no source span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainDiagnostic {
    /// Source file name as given by the caller (often a virtual name like
    /// `<request>` for text that never lived on disk).
    pub file: String,
    /// 1-based source line, or 0 when unknown.
    pub line: usize,
    /// 1-based column, or 0 when unknown.
    pub col: usize,
    /// `error`, `warning`, or `note`.
    pub severity: String,
    /// Stable machine-readable code (`asm-error`, or the lint rule name).
    pub code: String,
    /// Human-readable message, single line, no styling.
    pub message: String,
}

impl PlainDiagnostic {
    /// An assembler error, located at its source line when the parser
    /// recorded one.
    pub fn from_asm_error(err: &AsmError, file: &str) -> PlainDiagnostic {
        PlainDiagnostic {
            file: file.to_string(),
            line: err.line,
            col: if err.line == 0 { 0 } else { 1 },
            severity: "error".to_string(),
            code: "asm-error".to_string(),
            message: err.message.clone(),
        }
    }

    /// A lint finding, located through the program's source map. Findings
    /// on instructions without a span (builder-generated code) keep
    /// line 0 / col 0 but still carry the instruction index in the
    /// message's `instr #N, pc 0xAAAA` suffix.
    pub fn from_finding(finding: &Finding, map: &SourceMap, file: &str) -> PlainDiagnostic {
        let span = map.span(finding.instr_index);
        PlainDiagnostic {
            file: file.to_string(),
            line: span.map_or(0, |s| s.line),
            col: span.map_or(0, |s| s.col),
            severity: finding.severity().to_string(),
            code: finding.lint.name().to_string(),
            message: format!(
                "{} (instr #{}, pc {:#x})",
                finding.message, finding.instr_index, finding.pc
            ),
        }
    }

    /// The JSON object form used by `mt-serve` responses and
    /// `mtasm lint --plain --json`. Key order is fixed, so documents are
    /// byte-stable.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::Str(self.file.clone())),
            ("line", Json::U64(self.line as u64)),
            ("col", Json::U64(self.col as u64)),
            ("severity", Json::Str(self.severity.clone())),
            ("code", Json::Str(self.code.clone())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for PlainDiagnostic {
    /// `file:line:col: severity[code]: message` — the classic compiler
    /// one-liner; location fields are omitted when unknown.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: {}[{}]: {}",
                self.file, self.severity, self.code, self.message
            )
        } else {
            write!(
                f,
                "{}:{}:{}: {}[{}]: {}",
                self.file, self.line, self.col, self.severity, self.code, self.message
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_with_source_map;
    use mt_lint::lint_program;

    #[test]
    fn asm_error_forms() {
        let placed = PlainDiagnostic::from_asm_error(&AsmError::at(7, "unknown mnemonic"), "k.s");
        assert_eq!(
            placed.to_string(),
            "k.s:7:1: error[asm-error]: unknown mnemonic"
        );
        let builder = PlainDiagnostic::from_asm_error(&AsmError::new("too far"), "<builder>");
        assert_eq!(builder.to_string(), "<builder>: error[asm-error]: too far");
    }

    #[test]
    fn finding_carries_location_and_code() {
        // The §2.3.2 ordering rule: the load of R5 clobbers a source
        // element of the VL-8 vector still in flight (provable under
        // nominal warm timing).
        let src =
            "li r1, 0x2000\nfld R0, 0(r1)\nfadd R16..R23, R0..R7, R8..R15\nfld R5, 64(r1)\nhalt\n";
        let (program, map) = parse_with_source_map(src, 0x1_0000).unwrap();
        let findings = lint_program(&program);
        let ordering = findings
            .iter()
            .find(|f| f.lint.name() == "ordering-violation")
            .expect("ordering rule fires");
        let d = PlainDiagnostic::from_finding(ordering, &map, "req.s");
        assert_eq!((d.line, d.col), (4, 1));
        assert_eq!(d.severity, "error");
        assert_eq!(d.code, "ordering-violation");
        assert!(d.message.contains("instr #"), "{}", d.message);
        assert!(
            !d.to_string().contains('\x1b') && !d.to_string().contains('\n'),
            "single plain line"
        );
    }

    #[test]
    fn json_form_is_flat_and_stable() {
        let d = PlainDiagnostic::from_asm_error(&AsmError::at(3, "bad operand"), "a.s");
        let text = d.to_json().pretty();
        let parsed = mt_trace::json::parse(&text).unwrap();
        assert_eq!(parsed.get("line").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("code").unwrap().as_str(), Some("asm-error"));
        assert_eq!(text, d.to_json().pretty(), "byte-stable");
    }
}
