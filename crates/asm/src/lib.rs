//! Assembler for the MultiTitan instruction set.
//!
//! The paper's evaluation required hand-coding every benchmark (§3), so this
//! crate provides two front ends over the `mt-isa` encoders:
//!
//! * [`Asm`] — a programmatic builder with labels, branch fixup, and the
//!   `li`/`fdiv` pseudo-instructions. The kernel library (`mt-kernels`) and
//!   the mini-Mahler code generator build programs through it.
//! * [`parse`] — a two-pass text assembler with the same feature set, using
//!   a range syntax for vector operands: `fadd R8..R11, R0..R3, R4..R7`
//!   strides both sources; a plain register operand is a scalar broadcast.
//!
//! # Example
//!
//! ```
//! use mt_asm::Asm;
//! use mt_isa::{FReg, IReg};
//! use mt_fparith::FpOp;
//!
//! let mut a = Asm::new();
//! let r1 = IReg::new(1);
//! a.li(r1, 0x2000);
//! a.fld(FReg::new(0), r1, 0);
//! a.fld(FReg::new(1), r1, 8);
//! a.fvector(FpOp::Add, FReg::new(2), FReg::new(0), FReg::new(1), 1).unwrap();
//! a.halt();
//! let program = a.assemble(0x1_0000).unwrap();
//! assert_eq!(program.len(), 5);
//! ```

pub mod builder;
pub mod diag;
pub mod error;
pub mod parser;
pub mod span;

pub use builder::{Asm, Label};
pub use diag::PlainDiagnostic;
pub use error::AsmError;
pub use parser::{parse, parse_with_source_map};
pub use span::{SourceMap, SourceSpan};
