//! `mtasm` — assemble, lint, disassemble, run, and profile MultiTitan
//! programs.
//!
//! ```text
//! mtasm asm  <file.s> [--base <hex>] [--lint]  assemble; print words as hex
//! mtasm dis  <file.hex> [--base <hex>]         disassemble hex words
//! mtasm lint <file.s> [--base <hex>]           static analysis only
//! mtasm run  <file.s> [--base <hex>] [--lint] [--trace] [--timeline]
//!            [--cold] [--profile] [--top <n>] [--trace-out <file.json>]
//!            [--backend tick|xlate] [--config knob=value,...]
//!                                              assemble and simulate to halt
//! mtasm profile <file.s> [--base <hex>] [--lint] [--cold] [--top <n>]
//!            [--trace-out <file.json>]         simulate; hot-spot report
//! mtasm fault <file.s> [--base <hex>] [--seed <n>] [--injections <n>]
//!            [--json]                          fault-injection campaign
//! ```
//!
//! `run` starts with warm instruction fetch unless `--cold` is given, and
//! prints the run statistics (cycles, MFLOPS, stall breakdown) on exit.
//! `--config knob=value,...` overrides microarchitectural parameters
//! (`fpu_latency`, `fpu_lanes`, `dcache_bytes`, `num_fpu_regs`, … — the
//! `mt_sim::KNOB_NAMES` set); the default is the paper machine, and `mca`
//! honours the same flag for its static timing model.
//! Initialize memory with `.data <addr>` / `.double` / `.word` directives
//! in the source (see `examples/asm/*.s`); everything else starts zeroed.
//!
//! `profile` (or `--profile` alongside `run`) folds the run's event
//! stream into the per-PC cycle-attribution profiler and prints a
//! hot-spot table with source locations; `--top` limits the rows
//! (default 10, 0 = all). `--trace-out` writes the stream as Chrome
//! trace-event JSON, loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`, with one track per functional unit.
//!
//! `mca` runs the static cycle/throughput analyzer (`mt-mca`) without
//! simulating: the exact cache-warm prediction for straight-line
//! programs, and per-loop steady-state cycles-per-iteration with the
//! binding bottleneck resource. `--json` emits the `mt-mca-v1`
//! document. `--mca` alongside `run`/`profile` appends a
//! predicted-vs-measured table joining the static loop predictions with
//! the run's measured profile.
//!
//! `fault` runs the deterministic fault-injection campaign (`mt-fault`)
//! over the assembled program: seeded single-bit upsets are replayed
//! against a golden run and classified as masked / detected / SDC /
//! crash / hang. With no numeric oracle for a bare program, the golden
//! run's final architectural state (integer registers, FPU registers,
//! PSW) is the reference; memory is not diffed. `--json` emits the
//! `mt-bench-v1` campaign document.
//!
//! `lint` (or `--lint` alongside `asm`/`run`) runs the `mt-lint` static
//! analyzer — the §2.3.2 ordering rule, register dataflow, and structural
//! checks — and prints rustc-style diagnostics with source spans. Errors
//! make the command fail (and stop `run` before simulation); warnings and
//! notes do not. Silence an intentional Fig. 8 recurrence by annotating
//! its line with `; lint: allow(recurrence)`. `--plain` switches the
//! diagnostics to one-line `file:line:col: severity[code]: message`
//! records (no gutters, no carets) for editors and scripts.
//!
//! `client` drives a running `mt-serve` instance as a load generator:
//!
//! ```text
//! mtasm client <file.s> [--url http://host:port] [--endpoint run|assemble]
//!              [--concurrency <n>] [--requests <m>] [--lint] [--profile]
//!              [--trace] [--cold] [--base <hex>] [--cycles <n>]
//!              [--watchdog <n>] [--deadline-ms <n>] [--print-body]
//!              [--config knob=value,...] [--config-axis knob=v1,v2]...
//! ```
//!
//! and prints a stable `mt-serve-bench-v1` JSON summary. `--config`
//! pins one machine configuration for every request; a repeatable
//! `--config-axis knob=v1,v2` instead sweeps the axis across requests —
//! request *i* takes `values[i % len]` from each axis, replaying a
//! configuration sweep through the server's cache.
//!
//! `chaos` runs the seeded `mt-chaos` campaign against a running
//! `mt-serve` instance:
//!
//! ```text
//! mtasm chaos [--url http://host:port] [--seed <n>] [--scenarios <n>]
//!             [--hooks] [--slow-wait-ms <n>] [--json]
//! ```
//!
//! Without `--hooks` the campaign only misbehaves as a client (torn
//! requests, half-closes, slow-loris stalls, burned deadlines) and is
//! safe against any server; `--hooks` additionally draws the
//! worker-panic/worker-kill scenarios and requires the target to run
//! with `--chaos-hooks`. Exits nonzero if any scenario or final check
//! (healthz, pool strength, accounting invariant) fails.

mod chaos;
mod client;

use std::process::ExitCode;

use mt_asm::{parse_with_source_map, PlainDiagnostic, SourceMap};
use mt_fault::{run_program_campaign, CampaignConfig};
use mt_isa::Instr;
use mt_lint::cfg::ProgramView;
use mt_lint::{lint_program_with, LintOptions, Severity};
use mt_sim::{Backend, Machine, MachineConfig, Program, SimConfig, Timeline};
use mt_trace::{chrome, Json, Profiler, TraceEvent};

fn usage() -> ExitCode {
    eprintln!(
        "usage: mtasm asm <file.s> [--base <hex>] [--lint] [--plain]\n       mtasm dis <file.hex> [--base <hex>]\n       mtasm lint <file.s> [--base <hex>] [--plain]\n       mtasm mca <file.s> [--base <hex>] [--lint] [--json] [--config knob=value,...]\n       mtasm run <file.s> [--base <hex>] [--lint] [--trace] [--timeline] [--cold]\n                 [--profile] [--mca] [--top <n>] [--trace-out <file.json>]\n                 [--backend tick|xlate] [--config knob=value,...]\n       mtasm profile <file.s> [--base <hex>] [--lint] [--cold] [--top <n>] [--mca]\n                 [--trace-out <file.json>]\n       mtasm fault <file.s> [--base <hex>] [--seed <n>] [--injections <n>] [--json]\n       mtasm client <file.s> [--url http://host:port] [--endpoint run|assemble]\n                 [--concurrency <n>] [--requests <m>] [--lint] [--profile] [--trace]\n                 [--cold] [--base <hex>] [--cycles <n>] [--watchdog <n>] [--deadline-ms <n>]\n                 [--print-body] [--config knob=value,...] [--config-axis knob=v1,v2]...\n       mtasm chaos [--url http://host:port] [--seed <n>] [--scenarios <n>] [--hooks]\n                 [--slow-wait-ms <n>] [--json]"
    );
    ExitCode::from(2)
}

struct Options {
    path: String,
    base: u32,
    trace: bool,
    timeline: bool,
    cold: bool,
    lint: bool,
    plain: bool,
    profile: bool,
    top: usize,
    trace_out: Option<String>,
    seed: u64,
    injections: usize,
    json: bool,
    mca: bool,
    backend: Backend,
    config: MachineConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut base = 0x1_0000;
    let mut trace = false;
    let mut timeline = false;
    let mut cold = false;
    let mut lint = false;
    let mut plain = false;
    let mut profile = false;
    let mut top = 10;
    let mut trace_out = None;
    let mut seed = 0xA5;
    let mut injections = 200;
    let mut json = false;
    let mut mca = false;
    let mut backend = Backend::default();
    let mut config = MachineConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--base" => {
                let v = it.next().ok_or("--base needs a value")?;
                let v = v.trim_start_matches("0x");
                base = u32::from_str_radix(v, 16).map_err(|e| format!("bad base: {e}"))?;
            }
            "--trace" => trace = true,
            "--timeline" => timeline = true,
            "--cold" => cold = true,
            "--lint" => lint = true,
            "--plain" => plain = true,
            "--profile" => profile = true,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|e| format!("bad --top: {e}"))?;
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file name")?;
                trace_out = Some(v.to_string());
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                }
                .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--injections" => {
                let v = it.next().ok_or("--injections needs a value")?;
                injections = v.parse().map_err(|e| format!("bad --injections: {e}"))?;
            }
            "--json" => json = true,
            "--mca" => mca = true,
            "--backend" => {
                let v = it.next().ok_or("--backend needs tick|xlate")?;
                backend = v.parse()?;
            }
            "--config" => {
                let v = it.next().ok_or("--config needs `knob=value,...`")?;
                config = MachineConfig::parse(v).map_err(|e| format!("bad --config: {e}"))?;
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        path: path.ok_or("missing input file")?,
        base,
        trace,
        timeline,
        cold,
        lint,
        plain,
        profile,
        top,
        trace_out,
        seed,
        injections,
        json,
        mca,
        backend,
        config,
    })
}

/// Assembles `src` and runs the seeded fault-injection campaign on it.
fn fault_campaign(src: &str, opts: &Options) -> Result<(), String> {
    let (program, _map) = parse_with_source_map(src, opts.base).map_err(|e| e.to_string())?;
    let cfg = CampaignConfig {
        seed: opts.seed,
        injections: opts.injections,
        backend: opts.backend,
        ..CampaignConfig::default()
    };
    let result = run_program_campaign(&program, &opts.path, &cfg)?;
    if opts.json {
        println!("{}", result.to_json().pretty());
        return Ok(());
    }
    let c = result.counts;
    println!(
        "{}: seed {:#x}, {} injections: {} masked, {} detected, {} sdc, {} crash, {} hang",
        opts.path,
        result.seed,
        c.total(),
        c.masked,
        c.detected,
        c.sdc,
        c.crash,
        c.hang
    );
    println!();
    println!("{}", result.metrics.render());
    Ok(())
}

/// Lints an assembled program, printing diagnostics to stderr —
/// rustc-style spans by default, one-line plain records with `--plain`.
/// Returns an error when any error-severity finding exists.
fn lint(program: &Program, map: &SourceMap, path: &str, plain: bool) -> Result<(), String> {
    let opts = LintOptions {
        allow_recurrence: map.allowed_indices("recurrence"),
        ..LintOptions::default()
    };
    let findings = lint_program_with(program, &opts);
    for finding in &findings {
        if plain {
            eprintln!("{}", PlainDiagnostic::from_finding(finding, map, path));
        } else {
            eprintln!("{}", map.render(finding, path));
        }
    }
    let errors = mt_lint::error_count(&findings);
    let warnings = findings
        .iter()
        .filter(|f| f.severity() == Severity::Warning)
        .count();
    if !findings.is_empty() {
        eprintln!(
            "{path}: {} finding(s): {errors} error(s), {warnings} warning(s), {} note(s)",
            findings.len(),
            findings.len() - errors - warnings
        );
    }
    if errors > 0 {
        Err(format!("{errors} lint error(s)"))
    } else {
        Ok(())
    }
}

/// Assembles `src` and runs the static cycle/throughput analyzer
/// (`mt-mca`) without simulating: the exact straight-line prediction
/// when the program is branch-free, and every natural loop's
/// steady-state cycles-per-iteration with its binding bottleneck.
/// `--json` emits the `mt-mca-v1` document instead.
fn mca_analyze(src: &str, opts: &Options) -> Result<(), String> {
    let (program, map) = parse_with_source_map(src, opts.base).map_err(|e| e.to_string())?;
    if opts.lint {
        lint(&program, &map, &opts.path, opts.plain)?;
    }
    let view = ProgramView::decode(&program);
    let timing = opts.config.timing;
    let loops = mt_mca::loops(&view, timing);
    if opts.json {
        let mut doc = Json::obj([("schema", Json::Str(mt_mca::json::SCHEMA.to_string()))]);
        doc.push(
            "program",
            mt_mca::json::program_json(&opts.path, &view, &loops, None),
        );
        println!("{}", doc.pretty());
        return Ok(());
    }
    let resolve = |pc: u32| {
        let idx = pc.checked_sub(program.base)? / 4;
        let span = map.span(idx as usize)?;
        let text = map.line_text(span.line)?.trim().to_string();
        Some((format!("{}:{}", opts.path, span.line), text))
    };
    match mt_mca::straight_line(&view, timing) {
        Ok(pred) => {
            print!(
                "{}",
                mt_mca::report::straight_line_report(&view, &pred, &resolve)
            );
        }
        Err(skip) => println!("whole-program prediction unavailable: {skip}"),
    }
    if !loops.is_empty() {
        println!();
        for l in &loops {
            print!("{}", mt_mca::report::loop_report(&view, l, &resolve));
        }
    }
    Ok(())
}

/// Assembles and simulates `src`, honouring the tracing, timeline,
/// profiling, and export options. `force_profile` is the `profile`
/// subcommand (profiling on regardless of `--profile`).
fn run_program(src: &str, opts: &Options, force_profile: bool) -> Result<(), String> {
    let (program, map) = parse_with_source_map(src, opts.base).map_err(|e| e.to_string())?;
    if opts.lint {
        lint(&program, &map, &opts.path, opts.plain)?;
    }
    opts.config.validate_program(&program)?;
    let profile = force_profile || opts.profile;
    let recording = opts.trace || opts.timeline || profile || opts.mca || opts.trace_out.is_some();
    let mut m = Machine::new(SimConfig {
        trace: opts.trace,
        backend: opts.backend,
        machine: opts.config,
        ..SimConfig::default()
    });
    m.load_program(&program);
    if !opts.cold {
        m.warm_instructions(&program);
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let stats = if recording {
        m.run_with_sink(&mut events)
    } else {
        m.run()
    }
    .map_err(|e| e.to_string())?;

    if opts.trace {
        for line in m.trace_log() {
            println!("{line}");
        }
    }
    if opts.timeline {
        let annotate = |idx: u32| {
            map.span(idx as usize)
                .map(|s| format!("{}:{}", opts.path, s.line))
        };
        print!("{}", Timeline::from_events(&events, annotate).render(120));
    }
    if profile {
        let p = Profiler::from_events(&events);
        let resolve = |idx: u32| {
            let span = map.span(idx as usize)?;
            let text = map.line_text(span.line)?.trim().to_string();
            Some((format!("{}:{}", opts.path, span.line), text))
        };
        print!("{}", p.report(&opts.path, opts.top, &resolve));
        println!();
    }
    if opts.mca {
        let view = ProgramView::decode(&program);
        let loops = mt_mca::loops(&view, opts.config.timing);
        let p = Profiler::from_events(&events);
        let resolve = |pc: u32| {
            let idx = pc.checked_sub(program.base)? / 4;
            let span = map.span(idx as usize)?;
            let text = map.line_text(span.line)?.trim().to_string();
            Some((format!("{}:{}", opts.path, span.line), text))
        };
        if loops.is_empty() {
            println!("mca: no loops detected");
        } else {
            print!(
                "{}",
                mt_mca::report::compare_report(&view, &loops, &p, &resolve)
            );
        }
        println!();
    }
    if let Some(out) = &opts.trace_out {
        std::fs::write(out, chrome::trace_string(&events)).map_err(|e| format!("{out}: {e}"))?;
        eprintln!(
            "wrote {} events to {out} (Chrome trace-event JSON)",
            events.len()
        );
    }
    println!("{stats}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    // `client` has its own flag set (URL, concurrency, …), parsed by the
    // module itself.
    if cmd == "client" || cmd == "chaos" {
        let run = if cmd == "client" {
            client::run(rest)
        } else {
            chaos::run(rest)
        };
        return match run {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("mtasm: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mtasm: {e}");
            return usage();
        }
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));

    let result = match cmd.as_str() {
        "asm" => read(&opts.path).and_then(|src| {
            let (program, map) =
                parse_with_source_map(&src, opts.base).map_err(|e| e.to_string())?;
            if opts.lint {
                lint(&program, &map, &opts.path, opts.plain)?;
            }
            for w in &program.words {
                println!("{w:08x}");
            }
            Ok(())
        }),
        "lint" => read(&opts.path).and_then(|src| {
            let (program, map) =
                parse_with_source_map(&src, opts.base).map_err(|e| e.to_string())?;
            lint(&program, &map, &opts.path, opts.plain)
        }),
        "dis" => read(&opts.path).and_then(|text| {
            let mut addr = opts.base;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let w = u32::from_str_radix(line.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                match Instr::decode(w) {
                    Ok(i) => println!("{addr:#07x}: {i}"),
                    Err(e) => println!("{addr:#07x}: .word {w:#010x}  ; {e}"),
                }
                addr += 4;
            }
            Ok(())
        }),
        "run" => read(&opts.path).and_then(|src| run_program(&src, &opts, false)),
        "fault" => read(&opts.path).and_then(|src| fault_campaign(&src, &opts)),
        "profile" => read(&opts.path).and_then(|src| run_program(&src, &opts, true)),
        "mca" => read(&opts.path).and_then(|src| mca_analyze(&src, &opts)),
        _ => return usage(),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mtasm: {e}");
            ExitCode::FAILURE
        }
    }
}

// Silence the unused warning for Program, used only through parse's return
// type in this binary.
#[allow(unused)]
fn _uses(_: Program) {}
