//! `mtasm client` — a load generator for `mt-serve`.
//!
//! Posts one source file to a running server `--requests` times from
//! `--concurrency` threads (each with its own `X-Client-Id`, exercising
//! the server's per-client fairness), retries `429` rejections with a
//! short backoff, and prints a stable `mt-serve-bench-v1` summary —
//! including client-observed wall-clock latency percentiles from
//! per-thread bounded HDR histograms merged losslessly at the end.
//!
//! Failure accounting is deliberately bucketed: `retries_429` counts
//! retry *attempts* absorbed by backoff, `rejected_429_final` counts
//! requests that exhausted their retries and ended as `429`,
//! `shed_503` counts structured server sheds (deadline expired,
//! draining, overloaded — distinct from 429 queue-full pushback),
//! `disconnects` counts requests whose connection died or short-read
//! after the request was sent, and `failed_requests` counts the
//! remaining transport failures (connect/setup errors). `errors`
//! remains the umbrella (any non-2xx outcome).
//!
//! The summary is flat on purpose: every key renders on its own line.
//! CI diffs it with `repro-benchdiff --profile serve`, which enforces
//! key presence everywhere and exactness on the deterministic fields
//! (`requests`, `ok`, `distinct_bodies`, `body_fnv64`, …) while
//! tolerating the wall-clock and cache-luck ones (`elapsed_ms`,
//! `requests_per_second`, `cache_hits`, `cache_misses`, `retries_429`,
//! `rejected_429_final`, `latency_us.*`).
//!
//! The HTTP client is hand-rolled over `TcpStream` for the same reason
//! the server is: the workspace takes no dependencies, and the subset
//! needed (one POST, one response, `Connection: close`) is tiny.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mt_obs::HdrHistogram;
use mt_trace::Json;

/// FNV-1a 64 (private copy: `mtasm` cannot depend on `mt-serve`, which
/// depends on this crate).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct ClientOptions {
    url: String,
    path: String,
    endpoint: String,
    concurrency: usize,
    requests: usize,
    query: Vec<(String, String)>,
    /// `--config-axis knob=v1,v2` axes: request *i* takes
    /// `values[i % len]` from each axis, so a request stream replays a
    /// configuration sweep (and exercises one cache entry per distinct
    /// configuration).
    config_axes: Vec<(String, Vec<u64>)>,
    print_body: bool,
}

/// Transport failure classification: a connection that died (or
/// short-read) *after* the request went out is a different signal —
/// usually a server-side drop defense or a crash — than never reaching
/// the server at all.
enum TransportError {
    /// Connect/setup failed; the request was never sent.
    Connect(String),
    /// The request was sent but the reply never fully arrived.
    Disconnect(String),
}

impl TransportError {
    fn message(&self) -> &str {
        match self {
            TransportError::Connect(m) | TransportError::Disconnect(m) => m,
        }
    }
}

fn parse_client_options(args: &[String]) -> Result<ClientOptions, String> {
    let mut url = "http://127.0.0.1:8315".to_string();
    let mut path = None;
    let mut endpoint = "run".to_string();
    let mut concurrency = 4;
    let mut requests = 16;
    let mut query = Vec::new();
    let mut config_axes: Vec<(String, Vec<u64>)> = Vec::new();
    let mut print_body = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--url" => url = value("--url")?.to_string(),
            "--endpoint" => {
                endpoint = value("--endpoint")?.to_string();
                if endpoint != "run" && endpoint != "assemble" {
                    return Err(format!("bad --endpoint `{endpoint}` (run|assemble)"));
                }
            }
            "--concurrency" => {
                concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("bad --concurrency: {e}"))?;
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--base" => query.push(("base".to_string(), value("--base")?.to_string())),
            "--cycles" => query.push(("cycles".to_string(), value("--cycles")?.to_string())),
            "--watchdog" => query.push(("watchdog".to_string(), value("--watchdog")?.to_string())),
            "--deadline-ms" => query.push((
                "deadline-ms".to_string(),
                value("--deadline-ms")?.to_string(),
            )),
            "--config" => {
                let v = value("--config")?;
                // Validate locally so typos fail before any request.
                mt_sim::MachineConfig::parse(v).map_err(|e| format!("bad --config: {e}"))?;
                query.push(("config".to_string(), v.to_string()));
            }
            "--config-axis" => {
                let v = value("--config-axis")?;
                let (knob, list) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --config-axis `{v}` (need knob=v1,v2)"))?;
                let mut values = Vec::new();
                for item in list.split(',') {
                    let n: u64 = item
                        .parse()
                        .map_err(|e| format!("bad --config-axis value `{item}`: {e}"))?;
                    let mut probe = mt_sim::MachineConfig::default();
                    probe
                        .set_knob(knob, n)
                        .and_then(|()| probe.validate())
                        .map_err(|e| format!("bad --config-axis: {e}"))?;
                    values.push(n);
                }
                if values.is_empty() {
                    return Err(format!("--config-axis `{v}` has no values"));
                }
                config_axes.push((knob.to_string(), values));
            }
            "--cold" => query.push(("cold".to_string(), "1".to_string())),
            "--lint" => query.push(("lint".to_string(), "1".to_string())),
            "--profile" => query.push(("profile".to_string(), "1".to_string())),
            "--trace" => query.push(("trace".to_string(), "1".to_string())),
            "--print-body" => print_body = true,
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if concurrency == 0 || requests == 0 {
        return Err("--concurrency and --requests must be at least 1".to_string());
    }
    if !config_axes.is_empty() && query.iter().any(|(k, _)| k == "config") {
        return Err("--config and --config-axis are mutually exclusive".to_string());
    }
    Ok(ClientOptions {
        url,
        path: path.ok_or("missing input file")?,
        endpoint,
        concurrency,
        requests,
        query,
        config_axes,
        print_body,
    })
}

/// `http://host:port` → `host:port`.
fn host_port(url: &str) -> Result<&str, String> {
    url.strip_prefix("http://")
        .ok_or_else(|| format!("bad --url `{url}` (need http://host:port)"))
        .map(|rest| rest.trim_end_matches('/'))
}

/// One response: status, `X-Cache` header value, body.
struct HttpReply {
    status: u16,
    cache: Option<String>,
    body: String,
}

/// Sends one POST over a fresh connection and reads the full reply.
///
/// Write errors are tolerated: an overloaded or draining server may
/// answer and close before reading the request, leaving a perfectly
/// valid response on the wire behind a failed `write`. Only the *read*
/// side classifies the outcome.
fn post(
    addr: &str,
    target: &str,
    client_id: &str,
    body: &[u8],
) -> Result<HttpReply, TransportError> {
    let connect = |m: String| TransportError::Connect(m);
    let stream = TcpStream::connect(addr).map_err(|e| connect(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| connect(e.to_string()))?;
    let mut writer = stream.try_clone().map_err(|e| connect(e.to_string()))?;
    let _ = write!(
        writer,
        "POST {target} HTTP/1.1\r\nHost: {addr}\r\nX-Client-Id: {client_id}\r\n\
         Content-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(body);
    let _ = writer.flush();

    // From here the request is on the wire (or the server dropped us):
    // every failure is a disconnect/short-read.
    let gone = |m: String| TransportError::Disconnect(m);
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| gone(e.to_string()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            gone(format!(
                "short read: status line `{}`",
                status_line.trim_end()
            ))
        })?;
    let mut cache = None;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| gone(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "x-cache" => cache = Some(value.trim().to_string()),
                "content-length" => {
                    content_length = Some(
                        value
                            .trim()
                            .parse::<usize>()
                            .map_err(|e| gone(format!("bad content-length: {e}")))?,
                    );
                }
                _ => {}
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| gone(format!("short read: body: {e}")))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| gone(e.to_string()))?;
        }
    }
    Ok(HttpReply {
        status,
        cache,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

#[derive(Default)]
struct Tally {
    ok: usize,
    errors: usize,
    retries_429: usize,
    rejected_429_final: usize,
    shed_503: usize,
    disconnects: usize,
    failed_requests: usize,
    cache_hits: usize,
    cache_misses: usize,
    statuses: BTreeSet<u16>,
    body_hashes: BTreeSet<u64>,
    failures: Vec<String>,
    /// Client-observed per-request wall clock (µs), retries included.
    latency: HdrHistogram,
}

/// Entry point for `mtasm client <file.s> [flags]`.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_client_options(args)?;
    let source = std::fs::read_to_string(&opts.path).map_err(|e| format!("{}: {e}", opts.path))?;
    let addr = host_port(&opts.url)?.to_string();
    let query = opts
        .query
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join("&");
    let target = if query.is_empty() {
        format!("/{}", opts.endpoint)
    } else {
        format!("/{}?{query}", opts.endpoint)
    };
    // With `--config-axis` each request carries its own `config=` query
    // parameter, chosen by global request index so the replayed sweep is
    // independent of thread scheduling.
    let target_for = |i: usize| -> String {
        if opts.config_axes.is_empty() {
            return target.clone();
        }
        let cfg = opts
            .config_axes
            .iter()
            .map(|(knob, values)| format!("{knob}={}", values[i % values.len()]))
            .collect::<Vec<_>>()
            .join(",");
        let sep = if target.contains('?') { '&' } else { '?' };
        format!("{target}{sep}config={cfg}")
    };

    let tally = Mutex::new(Tally::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        let quota = opts.requests / opts.concurrency;
        let remainder = opts.requests % opts.concurrency;
        for worker in 0..opts.concurrency {
            // Spread the request count across threads (first threads take
            // the remainder); each thread owns a contiguous block of
            // global request indices so config axes replay determinately.
            let share = quota + usize::from(worker < remainder);
            let start = worker * quota + worker.min(remainder);
            let (addr, source, tally, target_for) = (&addr, &source, &tally, &target_for);
            scope.spawn(move || {
                let client_id = format!("client-{worker}");
                // Latency is recorded thread-locally and merged once at
                // the end — mergeable histograms make the aggregate
                // independent of thread interleaving.
                let mut latency = HdrHistogram::default();
                for j in 0..share {
                    let target = target_for(start + j);
                    let request_start = Instant::now();
                    let mut retries = 0;
                    let reply = loop {
                        match post(addr, &target, &client_id, source.as_bytes()) {
                            Ok(r) if r.status == 429 && retries < 200 => {
                                retries += 1;
                                std::thread::sleep(Duration::from_millis(25));
                            }
                            other => break other,
                        }
                    };
                    latency.record(request_start.elapsed().as_micros() as u64);
                    let mut t = tally.lock().unwrap();
                    t.retries_429 += retries;
                    match reply {
                        Ok(r) => {
                            t.statuses.insert(r.status);
                            t.body_hashes.insert(fnv1a64(r.body.as_bytes()));
                            match r.cache.as_deref() {
                                Some("hit") => t.cache_hits += 1,
                                Some("miss") => t.cache_misses += 1,
                                _ => {}
                            }
                            if (200..300).contains(&r.status) {
                                t.ok += 1;
                            } else {
                                t.errors += 1;
                                match r.status {
                                    429 => t.rejected_429_final += 1,
                                    // The server's structured sheds:
                                    // deadline expired, draining, or
                                    // over the connection cap.
                                    503 => t.shed_503 += 1,
                                    _ => {}
                                }
                            }
                        }
                        Err(e) => {
                            t.errors += 1;
                            match e {
                                TransportError::Disconnect(_) => t.disconnects += 1,
                                TransportError::Connect(_) => t.failed_requests += 1,
                            }
                            if t.failures.len() < 8 {
                                t.failures.push(e.message().to_string());
                            }
                        }
                    }
                }
                tally.lock().unwrap().latency.merge(&latency);
            });
        }
    });
    let elapsed = started.elapsed();
    let t = tally.into_inner().unwrap();

    if opts.print_body {
        // Replay one request for the body (a cache hit on any healthy
        // server) so scripts can capture the canonical response.
        let reply = post(&addr, &target, "client-body", source.as_bytes())
            .map_err(|e| e.message().to_string())?;
        print!("{}", reply.body);
        if !reply.body.ends_with('\n') {
            println!();
        }
        return Ok(());
    }

    let body_fnv64 = if t.body_hashes.len() == 1 {
        Json::Str(format!("{:#018x}", t.body_hashes.iter().next().unwrap()))
    } else {
        Json::Null
    };
    let statuses = Json::Arr(t.statuses.iter().map(|&s| Json::U64(s as u64)).collect());
    let summary = Json::obj([
        ("schema", Json::Str("mt-serve-bench-v1".to_string())),
        ("endpoint", Json::Str(opts.endpoint.clone())),
        ("requests", Json::U64(opts.requests as u64)),
        ("concurrency", Json::U64(opts.concurrency as u64)),
        ("ok", Json::U64(t.ok as u64)),
        ("errors", Json::U64(t.errors as u64)),
        ("statuses", statuses),
        ("distinct_bodies", Json::U64(t.body_hashes.len() as u64)),
        ("body_fnv64", body_fnv64),
        ("cache_hits", Json::U64(t.cache_hits as u64)),
        ("cache_misses", Json::U64(t.cache_misses as u64)),
        ("retries_429", Json::U64(t.retries_429 as u64)),
        ("rejected_429_final", Json::U64(t.rejected_429_final as u64)),
        ("shed_503", Json::U64(t.shed_503 as u64)),
        ("disconnects", Json::U64(t.disconnects as u64)),
        ("failed_requests", Json::U64(t.failed_requests as u64)),
        ("latency_us", t.latency.to_json()),
        ("elapsed_ms", Json::U64(elapsed.as_millis() as u64)),
        (
            "requests_per_second",
            Json::F64(opts.requests as f64 / elapsed.as_secs_f64().max(1e-9)),
        ),
    ]);
    println!("{}", summary.pretty());
    for f in &t.failures {
        eprintln!("mtasm client: {f}");
    }
    if t.errors > 0 {
        return Err(format!("{} request(s) failed", t.errors));
    }
    Ok(())
}
