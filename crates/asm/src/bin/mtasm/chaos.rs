//! `mtasm chaos` — point the seeded `mt-chaos` campaign at a running
//! `mt-serve` instance.
//!
//! ```text
//! mtasm chaos [--url http://host:port] [--seed N|0xN] [--scenarios N]
//!             [--hooks] [--slow-wait-ms N] [--json]
//! ```
//!
//! Hooks default to **off**: without `--hooks` the plan never draws the
//! worker-panic/worker-kill scenarios, so the command is safe to aim at
//! any server — it only misbehaves as a *client* (torn requests,
//! half-closes, slow-loris stalls, burned deadlines) and verifies the
//! server shrugs every one of them off. Pass `--hooks` only when the
//! target was started with `--chaos-hooks`.
//!
//! Exits nonzero if any scenario or any final check (healthz, pool
//! strength, accounting invariant, respawn match) fails. `--json`
//! prints the full `mt-chaos-v1` report.

use std::time::Duration;

use mt_chaos::{run_campaign, ChaosConfig};
use mt_trace::Json;

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// `http://host:port` → `host:port` (same contract as `mtasm client`).
fn host_port(url: &str) -> Result<&str, String> {
    url.strip_prefix("http://")
        .ok_or_else(|| format!("bad --url `{url}` (need http://host:port)"))
        .map(|rest| rest.trim_end_matches('/'))
}

/// Entry point for `mtasm chaos [flags]`.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = ChaosConfig::default();
    let mut url = "http://127.0.0.1:8315".to_string();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--url" => url = value("--url")?.to_string(),
            "--seed" => {
                cfg.seed = parse_u64(value("--seed")?).ok_or("bad --seed (need N or 0xN)")?;
            }
            "--scenarios" => {
                cfg.scenarios = value("--scenarios")?
                    .parse()
                    .map_err(|e| format!("bad --scenarios: {e}"))?;
            }
            "--slow-wait-ms" => {
                let ms: u64 = value("--slow-wait-ms")?
                    .parse()
                    .map_err(|e| format!("bad --slow-wait-ms: {e}"))?;
                cfg.slow_wait = Duration::from_millis(ms);
            }
            "--hooks" => cfg.expect_hooks = true,
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    cfg.addr = host_port(&url)?.to_string();

    let report = run_campaign(&cfg)?;
    if json {
        println!("{}", report.json.pretty());
    } else {
        let field = |k: &str| report.json.get(k).cloned().unwrap_or(Json::Null);
        println!(
            "chaos: {} — seed {}, {} scenarios, {} ok, checks {}",
            cfg.addr,
            field("seed"),
            field("scenarios_total"),
            field("scenarios_ok"),
            field("checks")
        );
        if let Some(Json::Arr(rows)) = report.json.get("scenarios").cloned() {
            for row in &rows {
                let get = |k: &str| row.get(k).cloned().unwrap_or(Json::Null);
                println!(
                    "  [{}] {:<20} {}  {}",
                    get("index"),
                    get("kind").as_str().unwrap_or("?"),
                    if matches!(get("ok"), Json::Bool(true)) {
                        "ok  "
                    } else {
                        "FAIL"
                    },
                    get("note").as_str().unwrap_or("")
                );
            }
        }
    }
    if report.ok {
        Ok(())
    } else {
        Err("chaos campaign failed (see scenario verdicts and checks)".to_string())
    }
}
