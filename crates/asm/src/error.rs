//! Assembler diagnostics.

use std::fmt;

/// An assembly error, with a source line when it came from the text parser
/// (line 0 means the error arose from the builder API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line, or 0 for builder-originated errors.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl AsmError {
    /// Creates a builder-level error (no source line).
    pub fn new(message: impl Into<String>) -> AsmError {
        AsmError {
            line: 0,
            message: message.into(),
        }
    }

    /// Creates a parser error at a source line.
    pub fn at(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            AsmError::new("bad thing").to_string(),
            "assembly error: bad thing"
        );
        assert_eq!(
            AsmError::at(3, "unknown mnemonic").to_string(),
            "line 3: unknown mnemonic"
        );
    }
}
