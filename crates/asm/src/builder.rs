//! The programmatic assembler: emit instructions, bind labels, assemble.

use mt_fparith::div::{DivOperand, DIV_DATAFLOW};
use mt_fparith::FpOp;
use mt_isa::cpu::{AluOp, BranchCond};
use mt_isa::{FReg, FpuAluInstr, IReg, Instr};
use mt_sim::Program;

use crate::error::AsmError;
use crate::span::SourceSpan;

/// A label handle; create with [`Asm::label`], place with [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Item {
    Fixed(Instr),
    Branch {
        cond: BranchCond,
        rs1: IReg,
        rs2: IReg,
        target: Label,
    },
    Jump {
        target: Label,
        link: bool,
    },
}

/// The program builder.
///
/// Instructions are appended in order; control flow references [`Label`]s,
/// which are resolved to offsets/addresses at [`Asm::assemble`] time. Every
/// emitter that can fail validates eagerly so errors carry context.
#[derive(Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
    /// Source span applied to items as they are pushed (parallel to
    /// `items`); `None` entries for programmatically built instructions.
    spans: Vec<Option<SourceSpan>>,
    current_span: Option<SourceSpan>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Creates an unbound label (bind it later with [`Asm::bind`]).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Number of instruction words emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether execution can reach the current (end) position: `false`
    /// after `halt`, `jr`, and unconditional (non-linking) jumps, `true`
    /// otherwise (including when nothing has been emitted) — and always
    /// `true` while a label is bound right here, since a branch or jump
    /// elsewhere targets whatever gets emitted next. Lets callers append
    /// a trailing safety `halt` only when it is actually reachable.
    pub fn falls_through(&self) -> bool {
        if self.labels.contains(&Some(self.items.len())) {
            return true;
        }
        !matches!(
            self.items.last(),
            Some(Item::Fixed(
                Instr::Halt | Instr::Jr { .. } | Instr::Jump { .. }
            )) | Some(Item::Jump { link: false, .. })
        )
    }

    fn push(&mut self, item: Item) {
        self.items.push(item);
        self.spans.push(self.current_span);
    }

    /// Sets the source span recorded for subsequently emitted items
    /// (`None` to clear). The text assembler calls this per source line;
    /// pseudo-instructions expanding to several items share the span.
    pub fn set_span(&mut self, span: Option<SourceSpan>) -> &mut Asm {
        self.current_span = span;
        self
    }

    /// Appends a raw instruction.
    pub fn instr(&mut self, i: Instr) -> &mut Asm {
        self.push(Item::Fixed(i));
        self
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Asm {
        self.instr(Instr::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Asm {
        self.instr(Instr::Halt)
    }

    /// Integer register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: IReg, rs1: IReg, rs2: IReg) -> &mut Asm {
        self.instr(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: IReg, rs1: IReg, imm: i32) -> &mut Asm {
        self.instr(Instr::Addi { rd, rs1, imm })
    }

    /// Load immediate pseudo-instruction: one `addi` when the value fits 18
    /// signed bits, otherwise `lui` + `addi` (two words).
    pub fn li(&mut self, rd: IReg, value: i32) -> &mut Asm {
        if (-(1 << 17)..(1 << 17)).contains(&value) {
            self.addi(rd, IReg::ZERO, value)
        } else {
            let hi = (value as u32) >> 14;
            let lo = (value as u32) & 0x3FFF;
            self.instr(Instr::Lui { rd, imm: hi });
            self.addi(rd, rd, lo as i32)
        }
    }

    /// `lw rd, offset(base)`
    pub fn lw(&mut self, rd: IReg, base: IReg, offset: i32) -> &mut Asm {
        self.instr(Instr::Lw { rd, base, offset })
    }

    /// `sw rs, offset(base)`
    pub fn sw(&mut self, rs: IReg, base: IReg, offset: i32) -> &mut Asm {
        self.instr(Instr::Sw { rs, base, offset })
    }

    /// `fld FR, offset(base)` — FPU register load.
    pub fn fld(&mut self, fr: FReg, base: IReg, offset: i32) -> &mut Asm {
        self.instr(Instr::Fld { fr, base, offset })
    }

    /// `fst FR, offset(base)` — FPU register store.
    pub fn fst(&mut self, fr: FReg, base: IReg, offset: i32) -> &mut Asm {
        self.instr(Instr::Fst { fr, base, offset })
    }

    /// Any FPU ALU instruction.
    pub fn falu(&mut self, i: FpuAluInstr) -> &mut Asm {
        self.instr(Instr::Falu(i))
    }

    /// Scalar FPU operation `op Rr, Ra, Rb` (vector length one).
    pub fn fscalar(&mut self, op: FpOp, rr: FReg, ra: FReg, rb: FReg) -> &mut Asm {
        self.falu(FpuAluInstr::scalar(op, rr, ra, rb))
    }

    /// Vector FPU operation with both sources striding.
    ///
    /// # Errors
    ///
    /// Propagates register-run/length validation errors.
    pub fn fvector(
        &mut self,
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
    ) -> Result<&mut Asm, AsmError> {
        let i =
            FpuAluInstr::vector(op, rr, ra, rb, vl).map_err(|e| AsmError::new(e.to_string()))?;
        Ok(self.falu(i))
    }

    /// Vector–scalar FPU operation: `Ra` strides, `Rb` broadcasts.
    ///
    /// # Errors
    ///
    /// Propagates register-run/length validation errors.
    pub fn fvector_scalar(
        &mut self,
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
    ) -> Result<&mut Asm, AsmError> {
        let i = FpuAluInstr::vector_scalar(op, rr, ra, rb, vl)
            .map_err(|e| AsmError::new(e.to_string()))?;
        Ok(self.falu(i))
    }

    /// Fully general FPU vector operation (explicit stride bits).
    ///
    /// # Errors
    ///
    /// Propagates register-run/length validation errors.
    #[allow(clippy::too_many_arguments)] // mirrors the instruction fields
    pub fn fvector_general(
        &mut self,
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
        sra: bool,
        srb: bool,
    ) -> Result<&mut Asm, AsmError> {
        let i = FpuAluInstr::new(op, rr, ra, rb, vl, sra, srb)
            .map_err(|e| AsmError::new(e.to_string()))?;
        Ok(self.falu(i))
    }

    /// The `fdiv` macro: expands to the six-operation Newton–Raphson
    /// division sequence of [`DIV_DATAFLOW`], computing `rr = ra / rb`
    /// using `t0`/`t1` as scratch registers.
    ///
    /// # Errors
    ///
    /// Rejects scratch registers aliasing the operands.
    pub fn fdiv(
        &mut self,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        t0: FReg,
        t1: FReg,
    ) -> Result<&mut Asm, AsmError> {
        if t0 == t1 || [ra, rb].contains(&t0) || [ra, rb].contains(&t1) {
            return Err(AsmError::new(format!(
                "fdiv scratch registers {t0}/{t1} must not alias the operands"
            )));
        }
        let resolve = |o: DivOperand| match o {
            DivOperand::Dividend => ra,
            DivOperand::Divisor => rb,
            DivOperand::ScratchR => t0,
            DivOperand::ScratchC => t1,
            DivOperand::Dest => rr,
            DivOperand::Unused => FReg::new(0),
        };
        for step in DIV_DATAFLOW {
            self.fscalar(
                step.op,
                resolve(step.dst),
                resolve(step.src_a),
                resolve(step.src_b),
            );
        }
        Ok(self)
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: IReg, rs2: IReg, target: Label) -> &mut Asm {
        self.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
        self
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: IReg, rs2: IReg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: IReg, rs2: IReg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target`
    pub fn blt(&mut self, rs1: IReg, rs2: IReg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target`
    pub fn bge(&mut self, rs1: IReg, rs2: IReg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }

    /// Unconditional jump to a label.
    pub fn j(&mut self, target: Label) -> &mut Asm {
        self.push(Item::Jump {
            target,
            link: false,
        });
        self
    }

    /// Jump-and-link (call) to a label.
    pub fn jal(&mut self, target: Label) -> &mut Asm {
        self.push(Item::Jump { target, link: true });
        self
    }

    /// `jr rs` — return / indirect jump.
    pub fn jr(&mut self, rs: IReg) -> &mut Asm {
        self.instr(Instr::Jr { rs })
    }

    /// Resolves labels and encodes the program at `base`.
    ///
    /// # Errors
    ///
    /// Reports unbound labels, out-of-range branch offsets, and instruction
    /// encoding failures.
    pub fn assemble(self, base: u32) -> Result<Program, AsmError> {
        Ok(self.assemble_with_spans(base)?.0)
    }

    /// Like [`Asm::assemble`], also returning the per-word source spans
    /// recorded via [`Asm::set_span`] (one entry per instruction word).
    ///
    /// # Errors
    ///
    /// See [`Asm::assemble`].
    pub fn assemble_with_spans(
        self,
        base: u32,
    ) -> Result<(Program, Vec<Option<SourceSpan>>), AsmError> {
        let resolve = |l: Label| -> Result<usize, AsmError> {
            self.labels[l.0].ok_or_else(|| AsmError::new(format!("unbound label #{}", l.0)))
        };
        let mut instrs = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let instr = match *item {
                Item::Fixed(i) => i,
                Item::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let t = resolve(target)? as i64;
                    let offset = t - (idx as i64 + 1);
                    Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        offset: i32::try_from(offset).map_err(|_| {
                            AsmError::new(format!("branch offset {offset} out of range"))
                        })?,
                    }
                }
                Item::Jump { target, link } => {
                    let t = resolve(target)? as u32 + base / 4;
                    if link {
                        Instr::Jal { target: t }
                    } else {
                        Instr::Jump { target: t }
                    }
                }
            };
            instrs.push(instr);
        }
        let program =
            Program::assemble_at(&instrs, base).map_err(|e| AsmError::new(e.to_string()))?;
        Ok((program, self.spans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_sim::{Machine, SimConfig};

    fn fr(i: u8) -> FReg {
        FReg::new(i)
    }

    fn ireg(i: u8) -> IReg {
        IReg::new(i)
    }

    fn run(program: &Program) -> Machine {
        let mut m = Machine::new(SimConfig::default());
        m.load_program(program);
        m.warm_instructions(program);
        m.run().expect("program halts");
        m
    }

    #[test]
    fn straight_line_program() {
        let mut a = Asm::new();
        a.li(ireg(1), 0x2000);
        a.fld(fr(0), ireg(1), 0);
        a.fld(fr(1), ireg(1), 8);
        a.fscalar(FpOp::Add, fr(2), fr(0), fr(1));
        a.fst(fr(2), ireg(1), 16);
        a.halt();
        let p = a.assemble(0x1_0000).unwrap();

        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        m.mem.memory.write_f64(0x2000, 1.5);
        m.mem.memory.write_f64(0x2008, 2.25);
        m.run().unwrap();
        assert_eq!(m.mem.memory.read_f64(0x2010), 3.75);
    }

    #[test]
    fn li_selects_narrow_and_wide_forms() {
        let mut a = Asm::new();
        a.li(ireg(1), 100);
        assert_eq!(a.len(), 1);
        a.li(ireg(2), 0x123456);
        assert_eq!(a.len(), 3, "wide li is lui+addi");
        a.li(ireg(3), -5);
        a.li(ireg(4), i32::MIN);
        a.li(ireg(5), i32::MAX);
        a.halt();
        let m = run(&a.assemble(0x1_0000).unwrap());
        assert_eq!(m.ireg(ireg(1)), 100);
        assert_eq!(m.ireg(ireg(2)), 0x123456);
        assert_eq!(m.ireg(ireg(3)), -5);
        assert_eq!(m.ireg(ireg(4)), i32::MIN);
        assert_eq!(m.ireg(ireg(5)), i32::MAX);
    }

    #[test]
    fn backward_branch_loop() {
        let mut a = Asm::new();
        a.li(ireg(1), 0); // counter
        a.li(ireg(2), 5); // limit
        let top = a.here();
        a.addi(ireg(1), ireg(1), 1);
        a.blt(ireg(1), ireg(2), top);
        a.halt();
        let m = run(&a.assemble(0x1_0000).unwrap());
        assert_eq!(m.ireg(ireg(1)), 5);
    }

    #[test]
    fn forward_branch_skips() {
        let mut a = Asm::new();
        let skip = a.label();
        a.li(ireg(1), 1);
        a.beq(ireg(0), ireg(0), skip);
        a.li(ireg(1), 99); // skipped
        a.bind(skip);
        a.halt();
        let m = run(&a.assemble(0x1_0000).unwrap());
        assert_eq!(m.ireg(ireg(1)), 1);
    }

    #[test]
    fn jump_and_call() {
        let mut a = Asm::new();
        let sub = a.label();
        let done = a.label();
        a.jal(sub);
        a.addi(ireg(2), ireg(1), 1);
        a.j(done);
        a.bind(sub);
        a.li(ireg(1), 41);
        a.jr(ireg(31));
        a.bind(done);
        a.halt();
        let m = run(&a.assemble(0x1_0000).unwrap());
        assert_eq!(m.ireg(ireg(2)), 42);
    }

    #[test]
    fn fdiv_macro_divides() {
        let mut a = Asm::new();
        a.fdiv(fr(2), fr(0), fr(1), fr(48), fr(49)).unwrap();
        a.halt();
        assert_eq!(a.len(), 7, "six operations + halt");
        let p = a.assemble(0x1_0000).unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        m.warm_instructions(&p);
        m.fpu.regs_mut().write_f64(fr(0), 21.0);
        m.fpu.regs_mut().write_f64(fr(1), 4.0);
        m.run().unwrap();
        assert_eq!(m.fpu.regs().read_f64(fr(2)), 5.25);
    }

    #[test]
    fn fdiv_rejects_aliased_scratch() {
        let mut a = Asm::new();
        assert!(a.fdiv(fr(2), fr(0), fr(1), fr(1), fr(49)).is_err());
        assert!(a.fdiv(fr(2), fr(0), fr(1), fr(48), fr(48)).is_err());
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        a.halt();
        let err = a.assemble(0x1_0000).unwrap_err();
        assert!(err.message.contains("unbound label"));
    }

    #[test]
    fn vector_emitters_validate() {
        let mut a = Asm::new();
        assert!(a.fvector(FpOp::Add, fr(48), fr(0), fr(8), 8).is_err());
        assert!(a.fvector(FpOp::Add, fr(16), fr(0), fr(8), 8).is_ok());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
