//! Source spans: mapping assembled instructions back to the text they came
//! from, and rendering `mt-lint` findings as rustc-style diagnostics.

use std::collections::{HashMap, HashSet};

use mt_lint::Finding;

/// Where in the source text an instruction was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSpan {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column of the instruction's first character.
    pub col: usize,
    /// Length of the instruction text in bytes.
    pub len: usize,
}

/// Per-instruction source locations for an assembled program, plus the
/// `lint: allow(...)` annotations collected from comments.
///
/// Produced by [`crate::parse_with_source_map`]; instruction indices match
/// the program's text-section word indices (and therefore `mt-lint`
/// finding indices). Pseudo-instructions that expand to several words
/// (`li`, `fdiv`, `fldv`, `fstv`) map every word to the source line that
/// wrote them.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    spans: Vec<Option<SourceSpan>>,
    lines: Vec<String>,
    /// Line number → lint rule names allowed on that line.
    allows: HashMap<usize, Vec<String>>,
}

impl SourceMap {
    pub(crate) fn new(
        spans: Vec<Option<SourceSpan>>,
        source: &str,
        allows: HashMap<usize, Vec<String>>,
    ) -> SourceMap {
        SourceMap {
            spans,
            lines: source.lines().map(str::to_string).collect(),
            allows,
        }
    }

    /// The span of instruction `instr_index`, if known.
    pub fn span(&self, instr_index: usize) -> Option<SourceSpan> {
        self.spans.get(instr_index).copied().flatten()
    }

    /// The text of 1-based source line `line`.
    pub fn line_text(&self, line: usize) -> Option<&str> {
        self.lines.get(line.checked_sub(1)?).map(String::as_str)
    }

    /// Instruction indices whose source line carries a
    /// `lint: allow(<rule>)` annotation.
    pub fn allowed_indices(&self, rule: &str) -> HashSet<usize> {
        let lines: HashSet<usize> = self
            .allows
            .iter()
            .filter(|(_, rules)| rules.iter().any(|r| r == rule))
            .map(|(&line, _)| line)
            .collect();
        self.spans
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.filter(|s| lines.contains(&s.line)).map(|_| i))
            .collect()
    }

    /// Renders one finding rustc-style, with the source line and a caret
    /// underline when the instruction has a span:
    ///
    /// ```text
    /// error[ordering-violation]: load of R5 clobbers ... (§2.3.2)
    ///   --> kernel.s:7:5
    ///    |
    ///  7 |     fld   R5, 0(r1)
    ///    |     ^^^^^^^^^^^^^^^
    ///    = note: instr #2, pc 0x10008
    /// ```
    pub fn render(&self, finding: &Finding, path: &str) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            finding.severity(),
            finding.lint.name(),
            finding.message
        );
        match self.span(finding.instr_index) {
            Some(span) => {
                let number = span.line.to_string();
                let gutter = " ".repeat(number.len());
                out.push_str(&format!(
                    "{gutter}--> {path}:{}:{}\n{gutter} |\n",
                    span.line, span.col
                ));
                if let Some(text) = self.line_text(span.line) {
                    out.push_str(&format!("{number} | {text}\n"));
                    out.push_str(&format!(
                        "{gutter} | {}{}\n",
                        " ".repeat(span.col - 1),
                        "^".repeat(span.len.max(1))
                    ));
                }
                out.push_str(&format!(
                    "{gutter} = note: instr #{}, pc {:#x}\n",
                    finding.instr_index, finding.pc
                ));
            }
            None => {
                out.push_str(&format!(
                    " --> {path}: instr #{}, pc {:#x}\n",
                    finding.instr_index, finding.pc
                ));
            }
        }
        out
    }
}

/// Parses the `lint: allow(rule, rule)` annotation form out of a comment.
pub(crate) fn parse_allow_annotation(comment: &str) -> Vec<String> {
    let Some(after) = comment.split("lint:").nth(1) else {
        return Vec::new();
    };
    let after = after.trim_start();
    let Some(args) = after
        .strip_prefix("allow(")
        .and_then(|rest| rest.split(')').next())
    else {
        return Vec::new();
    };
    args.split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_annotation_forms() {
        assert_eq!(
            parse_allow_annotation(" lint: allow(recurrence)"),
            ["recurrence"]
        );
        assert_eq!(parse_allow_annotation("lint: allow(a, b)"), ["a", "b"]);
        assert!(parse_allow_annotation("just a comment").is_empty());
        assert!(parse_allow_annotation("lint: deny(x)").is_empty());
        assert!(parse_allow_annotation("lint: allow()").is_empty());
    }
}
