//! Fuzz-style property tests: the text assembler must never panic, must
//! produce decodable words when it succeeds, and parsing a program's own
//! disassembly-like source must be stable. Every program that assembles
//! is additionally pushed through the `mt-lint` static analyzer, which
//! must never panic regardless of how degenerate the program is.

use mt_asm::parse;
use mt_isa::Instr;
use mt_lint::lint_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn parse_never_panics(src in "\\PC{0,200}") {
        let _ = parse(&src, 0x1_0000);
    }

    /// Line-noise built from assembler-ish tokens never panics either, and
    /// when it assembles, every word decodes.
    #[test]
    fn tokeny_soup_is_handled(
        lines in prop::collection::vec(
            prop_oneof![
                Just("fadd R1, R2, R3".to_string()),
                Just("fadd R0..R7, R8..R15, R16..R23".to_string()),
                Just("addi r1, r1, 1".to_string()),
                Just("lw r2, 4(r1)".to_string()),
                Just("fld R0, 0(r1)".to_string()),
                Just("x: nop".to_string()),
                Just("j x".to_string()),
                Just("beq r1, r2, x".to_string()),
                Just("halt".to_string()),
                Just("; comment only".to_string()),
                Just("fdiv R2, R0, R1, R48, R49".to_string()),
                Just("frobnicate r1".to_string()),
                Just("fadd R60, R1, R2".to_string()),
                Just("addi r1, r1, 99999999".to_string()),
            ],
            0..24,
        )
    ) {
        let src = lines.join("\n");
        if let Ok(program) = parse(&src, 0x1_0000) {
            for &w in &program.words {
                prop_assert!(Instr::decode(w).is_ok(), "assembled word {w:#010x} must decode");
            }
            // The static analyzer must survive anything the assembler
            // accepts; findings are free-form, panics are bugs.
            let _ = lint_program(&program);
        }
    }

    /// Arbitrary *words* (not just assembler output) never panic the
    /// linter: undecodable slots, wild branch targets, and hand-mangled
    /// vector encodings all flow through the CFG and replay analyses.
    #[test]
    fn lint_survives_arbitrary_words(words in prop::collection::vec(any::<u32>(), 0..48)) {
        let program = mt_sim::Program {
            words,
            base: 0x1_0000,
            segments: Vec::new(),
        };
        let _ = lint_program(&program);
    }

    /// Valid immediate forms roundtrip through addi.
    #[test]
    fn addi_immediates_roundtrip(v in -131072i32..=131071) {
        let src = format!("addi r5, r0, {v}\nhalt\n");
        let program = parse(&src, 0x1_0000).unwrap();
        match Instr::decode(program.words[0]).unwrap() {
            Instr::Addi { imm, .. } => prop_assert_eq!(imm, v),
            other => prop_assert!(false, "expected addi, got {}", other),
        }
    }

    /// Every register name in range parses; everything above is rejected.
    #[test]
    fn register_name_bounds(n in 0u8..=80) {
        let fsrc = format!("frecip R{n}, R0\nhalt\n");
        prop_assert_eq!(parse(&fsrc, 0).is_ok(), n < 52, "R{}", n);
        let isrc = format!("addi r{n}, r0, 1\nhalt\n");
        prop_assert_eq!(parse(&isrc, 0).is_ok(), n < 32, "r{}", n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The instruction decoder never panics on any 32-bit word — it
    /// returns `Ok` or a decode error, nothing else.
    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Instr::decode(word);
    }

    /// The whole simulator survives *executing* arbitrary words: any
    /// 32-bit soup loaded as text must end in a typed result (`Ok`,
    /// `BadInstruction`, `MemoryFault`, `CycleLimit`, `Watchdog`) —
    /// never a panic — under both tick and fast-forward execution, with
    /// arbitrary register contents steering wild loads, stores, and
    /// jumps. This is the no-panic hardening contract the fault
    /// campaign's crash classification rests on.
    #[test]
    fn machine_survives_arbitrary_text(
        words in prop::collection::vec(any::<u32>(), 1..64),
        regs in prop::collection::vec(any::<i32>(), 31),
        ff in any::<bool>(),
    ) {
        let program = mt_sim::Program {
            words,
            base: 0x1_0000,
            segments: Vec::new(),
        };
        let mut m = mt_sim::Machine::new(mt_sim::SimConfig {
            max_cycles: 20_000,
            watchdog_cycles: 2_000,
            fast_forward: ff,
            ..mt_sim::SimConfig::default()
        });
        m.load_program(&program);
        for (i, &v) in regs.iter().enumerate() {
            m.set_ireg(mt_isa::IReg::new(i as u8 + 1), v);
        }
        let _ = m.run();
    }
}
