//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_respect_size_spec() {
        let mut rng = TestRng::from_name("collection-tests");
        let exact = vec(0u8..10, 52);
        assert_eq!(exact.sample(&mut rng).len(), 52);

        let ranged = vec(0u8..10, 1..12);
        for _ in 0..200 {
            let v = ranged.sample(&mut rng);
            assert!((1..12).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }

        let inclusive = vec(0u8..10, 3..=4);
        for _ in 0..50 {
            let v = inclusive.sample(&mut rng);
            assert!((3..=4).contains(&v.len()));
        }
    }
}
