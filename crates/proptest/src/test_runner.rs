//! Case configuration, the deterministic PRNG, and case outcomes.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(&'static str),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// A deterministic splitmix64 generator. Seeded from the test name so
/// every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
