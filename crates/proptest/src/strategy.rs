//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;
use crate::Arbitrary;

/// A generator of values for property tests.
///
/// Unlike the real proptest `Strategy` there is no value tree and no
/// shrinking — `sample` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling others.
    fn prop_filter_map<O, F>(self, label: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            label,
            f,
        }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// smaller instances and returns one for larger instances. `depth`
    /// bounds the nesting; the size/branch hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for arbitrary values of `T` (see [`crate::any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    label: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "filter_map `{}` rejected 10000 consecutive samples",
            self.label
        );
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A weighted choice among strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Integer/float types samplable from a range strategy.
pub trait SampleRange: Copy {
    /// Uniform value in `[lo, hi)`.
    fn in_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform value in `[lo, hi]`.
    fn in_range_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn in_range(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128) - (lo as i128);
                assert!(span > 0, "empty range strategy");
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
            fn in_range_inclusive(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128) - (lo as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn in_range(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        lo + rng.unit_f64() * (hi - lo)
    }
    fn in_range_inclusive(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::in_range(self.start, self.end, rng)
    }
}

impl<T: SampleRange> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::in_range_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// A pattern string used as a strategy generates character soup. Only the
/// trailing `{m,n}` repetition count is honoured; the class itself is
/// approximated by a printable-heavy mix with some control and non-ASCII
/// characters (sufficient for parser never-panics fuzzing).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repetition(self).unwrap_or((0, 64));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2 => ';',
                3 => '#',
                4 => ',',
                5 => ':',
                6 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('¿'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (min, max) = body[brace + 1..].split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u8..7).sample(&mut r);
            assert!((3..7).contains(&v));
            let w = (-5i32..=5).sample(&mut r);
            assert!((-5..=5).contains(&w));
            let f = (-2.0f64..2.0).sample(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_union_compose() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
        let odd = (0u32..100).prop_filter_map("odd", |v| (v % 2 == 1).then_some(v));
        for _ in 0..100 {
            assert_eq!(odd.sample(&mut r) % 2, 1);
        }
        let u = Union::new(vec![(1, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        let twos = (0..1000).filter(|_| u.sample(&mut r) == 2).count();
        assert!(twos > 500, "weighted arm dominates: {twos}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut r)) <= 4);
        }
    }

    #[test]
    fn string_pattern_honours_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "\\PC{0,200}".sample(&mut r);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn any_produces_extremes_eventually() {
        let mut r = rng();
        let mut saw_max = false;
        for _ in 0..1000 {
            if any::<u64>().sample(&mut r) == u64::MAX {
                saw_max = true;
            }
        }
        assert!(saw_max);
    }
}
