//! An offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `proptest` cannot be resolved. This shim implements the
//! subset of its API that the workspace's property tests use — the
//! `proptest!` macro family, `Strategy` with `prop_map` /
//! `prop_filter_map` / `prop_recursive`, `any`, `Just`, ranges, tuples,
//! `prop::collection::vec`, weighted `prop_oneof!`, and
//! `ProptestConfig::with_cases` — on top of a deterministic splitmix PRNG.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking: a failing case panics with the generated inputs' debug
//!   output instead of a minimized counterexample;
//! * generation is seeded from the test name, so runs are reproducible
//!   without `.proptest-regressions` files (which are ignored);
//! * string "regex" strategies only honour the `{m,n}` repetition suffix
//!   and otherwise generate a printable-heavy character soup.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Any, BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Creates a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value from `rng`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix full-width noise with small and extreme values so the
                // interesting corners show up without shrinking.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Mirror of the real crate's `prelude::prop` re-export path
/// (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::strategy::{Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions: each `fn name(pat in strategy, ..)`
/// body runs for `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(8).max(1024);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                let ($($pat,)*) = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            accepted,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a message (the case's inputs are not
/// shrunk; the message should identify them).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is regenerated and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}
