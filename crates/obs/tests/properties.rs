//! Property tests for the telemetry primitives.
//!
//! * The HDR histogram's quantiles stay within the *documented*
//!   relative-error bound of the exact nearest-rank oracle — on
//!   adversarial distributions (constants, bucket edges, extremes,
//!   full-range noise), at every interesting percentile.
//! * `merge` is associative, commutative, and lossless with respect to
//!   bucket counts (merged state is byte-identical to having recorded
//!   every sample into one histogram).
//! * The sliding-window counter matches a naive model on arbitrary
//!   add/query schedules, including idle gaps longer than the window.

use mt_obs::{HdrHistogram, WindowedCounter};
use proptest::prelude::*;

/// Exact nearest-rank percentile — the accuracy oracle.
fn exact_nearest_rank(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Adversarial sample values: zeros, extremes, exact powers of two
/// (bucket lower edges), values one below an edge (bucket upper edges),
/// small integers (the exact range), and full-width noise.
fn sample_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        (0u32..64).prop_map(|b| 1u64 << b),
        (1u32..64).prop_map(|b| (1u64 << b) - 1),
        0u64..64,
        any::<u64>(),
    ]
}

fn histogram_of(samples: &[u64]) -> HdrHistogram {
    let mut h = HdrHistogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn quantiles_stay_within_the_documented_bound(
        samples in prop::collection::vec(sample_value(), 1..400),
    ) {
        let h = histogram_of(&samples);
        let bound = h.relative_error_bound();
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let e = exact_nearest_rank(&samples, p);
            let got = h.quantile(p).expect("non-empty");
            let rel = if e == 0 {
                // Zero lives in an exact bucket: the estimate must be 0 too.
                got as f64
            } else {
                (got as f64 - e as f64).abs() / e as f64
            };
            prop_assert!(
                rel <= bound,
                "p{p}: estimate {got} vs exact {e} (rel {rel:.6} > bound {bound:.6})"
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    #[test]
    fn merge_is_commutative_associative_and_lossless(
        a in prop::collection::vec(sample_value(), 0..120),
        b in prop::collection::vec(sample_value(), 0..120),
        c in prop::collection::vec(sample_value(), 0..120),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        // Commutative: a∪b == b∪a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a∪b)∪c == a∪(b∪c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Lossless: merging equals recording every sample into one
        // histogram (bucket counts, count, sum, min, max — full
        // structural equality).
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &histogram_of(&all));
    }

    #[test]
    fn windowed_counter_matches_a_naive_model(
        window in 1u64..12,
        steps in prop::collection::vec((0u64..6, 0u64..100), 1..60),
        // Occasionally jump far past the window (a stalled process).
        big_gap_at in 0usize..60,
    ) {
        let mut w = WindowedCounter::new(window);
        let mut log: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for (i, &(advance, delta)) in steps.iter().enumerate() {
            now += advance;
            if i == big_gap_at {
                now += window * 3;
            }
            w.add(now, delta);
            log.push((now, delta));

            let naive: u64 = log
                .iter()
                .filter(|&&(s, _)| s + window > now && s <= now)
                .map(|&(_, d)| d)
                .sum();
            prop_assert_eq!(w.total(now), naive, "at second {}", now);
            prop_assert!((w.rate(now) - naive as f64 / window as f64).abs() < 1e-12);

            // A query far in the future reads zero without mutating.
            prop_assert_eq!(w.total(now + window * 2), 0);
            prop_assert_eq!(w.total(now), naive, "query must not mutate");
        }
    }
}
