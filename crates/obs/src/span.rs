//! Request-scoped spans: the life of one service request as a tree of
//! named, monotonic wall-clock intervals.
//!
//! Every request gets an id and a [`SpanSet`]; each stage of the serving
//! path — `read-request` → `parse` → `cache-lookup` → `queue-wait` →
//! `worker-service` ⊃ `sim-run` → `respond` — records its interval as a
//! microsecond offset from the request's start. The set exports as
//! Chrome trace JSON (the same envelope the PR 2 simulator exporter
//! emits, via [`mt_trace::chrome`]), so a single request's journey is
//! loadable in Perfetto next to the cycle-level traces, and the server
//! folds the same intervals into per-stage latency histograms.
//!
//! Timing uses [`Instant`] (monotonic) exclusively — never the wall
//! clock — so spans are immune to clock steps; only *offsets* relative
//! to the request's own start leave the process.

use std::time::Instant;

use mt_trace::chrome;
use mt_trace::Json;

/// One completed interval within a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`queue-wait`, `sim-run`, …).
    pub name: &'static str,
    /// Start, microseconds after the request began.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The spans of one request, anchored at its accept time.
#[derive(Debug, Clone)]
pub struct SpanSet {
    /// Request id (assigned by the server; unique per process).
    pub id: u64,
    t0: Instant,
    spans: Vec<Span>,
}

impl SpanSet {
    /// Starts recording a request now.
    pub fn begin(id: u64) -> SpanSet {
        SpanSet {
            id,
            t0: Instant::now(),
            spans: Vec::with_capacity(8),
        }
    }

    /// The request's start instant — workers on other threads measure
    /// against this same anchor, so their spans land on the same axis.
    pub fn t0(&self) -> Instant {
        self.t0
    }

    /// Microseconds from the request start to `t` (0 if `t` precedes it).
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.t0).as_micros() as u64
    }

    /// Records a completed interval `[start, end]`.
    pub fn record(&mut self, name: &'static str, start: Instant, end: Instant) {
        let start_us = self.offset_us(start);
        self.spans.push(Span {
            name,
            start_us,
            dur_us: self.offset_us(end).saturating_sub(start_us),
        });
    }

    /// Records an interval from explicit offsets (for spans measured on
    /// another thread and shipped back as numbers).
    pub fn record_offsets(&mut self, name: &'static str, start_us: u64, dur_us: u64) {
        self.spans.push(Span {
            name,
            start_us,
            dur_us,
        });
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Duration of the named span, if recorded.
    pub fn dur_us(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.dur_us)
    }

    /// Chrome trace-event export: one process, one track, one duration
    /// event per span (1 trace µs = 1 real µs). Loadable in Perfetto.
    pub fn to_chrome_json(&self) -> Json {
        const TID: u64 = 1;
        let mut events = vec![
            chrome::entry(
                "process_name".to_string(),
                "M",
                0,
                TID,
                vec![(
                    "name".to_string(),
                    Json::Str("mt-serve request".to_string()),
                )],
            ),
            chrome::thread_name(TID, &format!("request {}", self.id)),
        ];
        let mut body: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                chrome::complete(
                    s.name.to_string(),
                    s.start_us,
                    s.dur_us,
                    TID,
                    vec![("request_id".to_string(), Json::U64(self.id))],
                )
            })
            .collect();
        body.sort_by_key(|ev| match ev.get("ts") {
            Some(Json::U64(ts)) => *ts,
            _ => 0,
        });
        events.extend(body);
        chrome::document(
            events,
            Json::obj([(
                "note",
                Json::Str("1 trace µs = 1 real µs (request wall clock)".to_string()),
            )]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_exports_spans() {
        let mut set = SpanSet::begin(42);
        let t0 = set.t0();
        set.record("read-request", t0, t0);
        set.record_offsets("queue-wait", 10, 25);
        set.record_offsets("worker-service", 35, 100);
        set.record_offsets("sim-run", 40, 80);
        assert_eq!(set.dur_us("queue-wait"), Some(25));
        assert_eq!(set.dur_us("missing"), None);

        let doc = set.to_chrome_json();
        let text = doc.pretty();
        assert!(mt_trace::json::validate(&text).is_ok());
        let events = doc.get("traceEvents").unwrap().items();
        // 2 metadata + 4 spans, timestamps non-decreasing.
        assert_eq!(events.len(), 6);
        let mut last = 0.0;
        for ev in events {
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last);
            last = ts;
        }
        assert!(text.contains("request 42"));
        assert!(text.contains("queue-wait"));
    }

    #[test]
    fn offsets_saturate_before_t0() {
        let set = SpanSet::begin(1);
        let early = Instant::now()
            .checked_sub(std::time::Duration::from_secs(1))
            .unwrap_or_else(Instant::now);
        assert_eq!(set.offset_us(early), 0);
    }
}
