//! Prometheus text-format exposition (version 0.0.4).
//!
//! A tiny writer for the subset the service emits: `counter` and
//! `gauge` families (with optional labels) and `summary` families
//! rendered from [`HdrHistogram`] quantiles. Families are written in
//! call order; each gets its `# HELP`/`# TYPE` header exactly once.
//! A matching [`validate`] checks the line grammar so tests and the CI
//! smoke can assert the document is scrapeable without a real
//! Prometheus binary.

use std::fmt::Write as _;

use crate::hdr::HdrHistogram;

/// Builds one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Escapes a HELP string (backslash and newline, per the format spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a sample value: integers stay integral, floats keep a point.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name {name}"
        );
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {}", num(value));
        } else {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            let _ = writeln!(self.out, "{name}{{{}}} {}", rendered.join(","), num(value));
        }
    }

    /// A single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// A counter family with one sample per label set.
    pub fn counter_vec(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in samples {
            self.sample(name, labels, *value as f64);
        }
    }

    /// A single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A gauge family with one sample per label set.
    pub fn gauge_vec(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in samples {
            self.sample(name, labels, *value);
        }
    }

    /// A summary family from a histogram: p50/p90/p99/p999 quantile
    /// samples plus `_sum` and `_count`. Empty histograms still emit
    /// `_sum`/`_count` (zero) so the family is always present.
    pub fn summary(&mut self, name: &str, help: &str, h: &HdrHistogram) {
        self.header(name, help, "summary");
        for (q, p) in [
            ("0.5", 50.0),
            ("0.9", 90.0),
            ("0.99", 99.0),
            ("0.999", 99.9),
        ] {
            if let Some(v) = h.quantile(p) {
                self.sample(name, &[("quantile", q)], v as f64);
            }
        }
        self.sample(&format!("{name}_sum"), &[], h.sum() as f64);
        self.sample(&format!("{name}_count"), &[], h.count() as f64);
    }

    /// A summary family with one histogram per label set (e.g. one
    /// per request stage).
    pub fn summary_vec(
        &mut self,
        name: &str,
        help: &str,
        samples: &[(&[(&str, &str)], &HdrHistogram)],
    ) {
        self.header(name, help, "summary");
        for (labels, h) in samples {
            for (q, p) in [
                ("0.5", 50.0),
                ("0.9", 90.0),
                ("0.99", 99.0),
                ("0.999", 99.9),
            ] {
                if let Some(v) = h.quantile(p) {
                    let mut with_q = labels.to_vec();
                    with_q.push(("quantile", q));
                    self.sample(name, &with_q, v as f64);
                }
            }
            self.sample(&format!("{name}_sum"), labels, h.sum() as f64);
            self.sample(&format!("{name}_count"), labels, h.count() as f64);
        }
    }

    /// The finished document (ends with a newline).
    pub fn render(self) -> String {
        self.out
    }
}

/// Checks `text` against the exposition-format line grammar: every line
/// is a comment or `name[{labels}] value`, every samples' family has a
/// preceding `# TYPE`, and values parse as floats. Returns the list of
/// family names with a `# TYPE` line.
///
/// # Errors
///
/// Returns the first offending line.
pub fn validate(text: &str) -> Result<Vec<String>, String> {
    let mut families: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or_else(|| format!("bad TYPE: {line}"))?;
                let kind = parts.next().ok_or_else(|| format!("bad TYPE: {line}"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("unknown family type: {line}"));
                }
                families.push(name.to_string());
            } else if !rest.starts_with("HELP ") {
                return Err(format!("unknown comment: {line}"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('}') {
            Some(i) => {
                let (head, tail) = line.split_at(i + 1);
                let name = head.split('{').next().unwrap_or_default();
                (name, tail.trim())
            }
            None => {
                let mut it = line.split_whitespace();
                (it.next().unwrap_or_default(), it.next().unwrap_or_default())
            }
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name: {line}"));
        }
        if value_part != "NaN" && value_part.parse::<f64>().is_err() {
            return Err(format!("bad sample value: {line}"));
        }
        // `_sum`/`_count` samples belong to their summary family.
        let base = name_part
            .strip_suffix("_sum")
            .or_else(|| name_part.strip_suffix("_count"))
            .unwrap_or(name_part);
        if !families.iter().any(|f| f == base || f == name_part) {
            return Err(format!("sample without a TYPE declaration: {line}"));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_labels() {
        let mut p = PromText::new();
        p.counter("mtserve_requests_total", "Requests accepted.", 17);
        p.gauge("mtserve_queue_depth", "Jobs queued.", 3.0);
        p.counter_vec(
            "mtserve_responses_total",
            "Responses by status.",
            &[(&[("status", "200")], 12), (&[("status", "429")], 5)],
        );
        let text = p.render();
        assert!(text.contains("# TYPE mtserve_requests_total counter\n"));
        assert!(text.contains("mtserve_requests_total 17\n"));
        assert!(text.contains("mtserve_responses_total{status=\"429\"} 5\n"));
        let fams = validate(&text).unwrap();
        assert_eq!(fams.len(), 3);
    }

    #[test]
    fn summary_from_histogram() {
        let mut h = HdrHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut p = PromText::new();
        p.summary("mtserve_latency_us", "Request latency.", &h);
        let text = p.render();
        assert!(text.contains("# TYPE mtserve_latency_us summary\n"));
        assert!(text.contains("mtserve_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("mtserve_latency_us_count 1000\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn labeled_summaries_share_one_family() {
        let mut fast = HdrHistogram::default();
        let mut slow = HdrHistogram::default();
        fast.record(10);
        slow.record(1000);
        let mut p = PromText::new();
        p.summary_vec(
            "stage_us",
            "Per-stage latency.",
            &[
                (&[("stage", "parse")] as &[_], &fast),
                (&[("stage", "sim-run")] as &[_], &slow),
            ],
        );
        let text = p.render();
        assert_eq!(text.matches("# TYPE stage_us summary").count(), 1);
        assert!(text.contains("stage_us{stage=\"parse\",quantile=\"0.5\"} 10\n"));
        assert!(text.contains("stage_us_count{stage=\"sim-run\"} 1\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn empty_summary_still_exposes_count() {
        let mut p = PromText::new();
        p.summary("x_us", "Empty.", &HdrHistogram::default());
        let text = p.render();
        assert!(text.contains("x_us_count 0\n"));
        assert!(!text.contains("quantile"));
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("mtserve_requests_total 1\n").is_err(), "no TYPE");
        assert!(validate("# TYPE a counter\na zzz\n").is_err(), "bad value");
        assert!(validate("# TYPE a counter\n9bad 1\n").is_err(), "bad name");
        assert!(validate("# TYPE a frobnicator\n").is_err(), "bad kind");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.gauge_vec(
            "g",
            "Help with \\ and\nnewline.",
            &[(&[("k", "a\"b\\c\nd")] as &[_], 1.5)],
        );
        let text = p.render();
        assert!(text.contains("# HELP g Help with \\\\ and\\nnewline.\n"));
        assert!(text.contains("g{k=\"a\\\"b\\\\c\\nd\"} 1.5\n"));
        validate(&text).unwrap();
    }
}
