//! `mt-obs` — end-to-end service telemetry for the MultiTitan
//! reproduction.
//!
//! PR 2 (`mt-trace`) gave the *simulator core* its measurement substrate:
//! typed per-cycle events, a profiler, and Chrome trace export. This
//! crate gives the *serving path* the same discipline, because the
//! ROADMAP's 100k-req/s push is blocked on measurement, not mechanism —
//! you cannot scale what you cannot observe, and you cannot keep a win
//! you cannot gate. Four pieces, all std-only and dependency-free beyond
//! `mt-trace`'s JSON layer:
//!
//! * [`hdr`] — bounded log-linear (HDR-style) histograms: fixed memory
//!   over the full `u64` range, mergeable, p50/p99/p999 within a proven
//!   relative-error bound (`2^-(sub_bits+1)`, ≈1.6 % at the default).
//!   Replaces the unbounded exact sample buffer in the serve metrics.
//! * [`span`] — request-scoped span trees (`read-request` →
//!   `queue-wait` → `worker-service` ⊃ `sim-run` → `respond`) with
//!   monotonic timing, exported as Chrome trace JSON through the PR 2
//!   exporter so Perfetto loads service spans next to cycle traces.
//! * [`window`] — sliding-window counters for instantaneous rates
//!   (req/s, error rate, 429 rate) with deterministic, injectable time.
//! * [`prom`] — Prometheus text-format exposition (counters, gauges,
//!   histogram-backed summaries) plus a grammar validator for CI.
//! * [`benchdiff`] — per-metric-tolerance diffing of committed
//!   `mt-*-v1` BENCH documents; `repro-benchdiff` turns it into the
//!   regression gate `./ci` runs on every PR.

pub mod benchdiff;
pub mod hdr;
pub mod prom;
pub mod span;
pub mod window;

pub use benchdiff::{diff, Finding, Rule, Tolerance};
pub use hdr::HdrHistogram;
pub use prom::PromText;
pub use span::{Span, SpanSet};
pub use window::WindowedCounter;
