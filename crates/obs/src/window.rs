//! Time-windowed counters: sliding-window rates over per-second slots.
//!
//! `GET /metrics` wants "requests per second *right now*", not the
//! lifetime average a monotonic counter gives. A [`WindowedCounter`]
//! keeps one slot per second in a fixed ring of `window` slots; each
//! slot remembers the second it last belonged to, so stale slots are
//! lazily zeroed on touch — no background thread, O(window) memory,
//! O(1) add.
//!
//! Time is an explicit `now_s` argument (seconds from any monotonic
//! origin, e.g. server start) rather than a hidden clock read: callers
//! stay deterministic in tests and the edge cases — empty window, a
//! clock that steps far forward, ring-index wraparound — are directly
//! exercisable.

/// A counter summed over the trailing `window` seconds.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    window: u64,
    /// Per-second counts; slot `s % window` belongs to second `stamp[s % window]`.
    slots: Vec<u64>,
    stamps: Vec<u64>,
}

impl WindowedCounter {
    /// A counter over a `window`-second sliding window.
    ///
    /// # Panics
    ///
    /// Panics when `window` is 0.
    pub fn new(window: u64) -> WindowedCounter {
        assert!(window > 0, "window must be at least one second");
        WindowedCounter {
            window,
            slots: vec![0; window as usize],
            stamps: vec![u64::MAX; window as usize],
        }
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window
    }

    /// Adds `delta` at second `now_s`.
    pub fn add(&mut self, now_s: u64, delta: u64) {
        let i = (now_s % self.window) as usize;
        if self.stamps[i] != now_s {
            self.stamps[i] = now_s;
            self.slots[i] = 0;
        }
        self.slots[i] += delta;
    }

    /// Total counted in `(now_s - window, now_s]`. A clock step past the
    /// window naturally reads 0: every slot's stamp is then stale.
    pub fn total(&self, now_s: u64) -> u64 {
        let lo = now_s.saturating_sub(self.window - 1);
        self.slots
            .iter()
            .zip(&self.stamps)
            .filter(|&(_, &stamp)| stamp >= lo && stamp <= now_s)
            .map(|(&n, _)| n)
            .sum()
    }

    /// Average per-second rate over the window at `now_s`.
    pub fn rate(&self, now_s: u64) -> f64 {
        self.total(now_s) as f64 / self.window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reads_zero() {
        let w = WindowedCounter::new(10);
        assert_eq!(w.total(0), 0);
        assert_eq!(w.total(u64::MAX), 0);
        assert_eq!(w.rate(5), 0.0);
    }

    #[test]
    fn counts_slide_out_of_the_window() {
        let mut w = WindowedCounter::new(3);
        w.add(0, 5);
        w.add(1, 1);
        w.add(2, 1);
        assert_eq!(w.total(2), 7, "all three seconds in window");
        assert_eq!(w.total(3), 2, "second 0 slid out");
        assert_eq!(w.total(4), 1);
        assert_eq!(w.total(5), 0, "everything expired");
    }

    #[test]
    fn ring_slot_reuse_resets_stale_counts() {
        let mut w = WindowedCounter::new(2);
        w.add(0, 100);
        // Second 2 maps to the same slot as second 0; the stale count
        // must not leak into the new second.
        w.add(2, 1);
        assert_eq!(w.total(2), 1);
    }

    #[test]
    fn clock_step_far_forward_reads_zero_then_recovers() {
        let mut w = WindowedCounter::new(60);
        w.add(5, 10);
        assert_eq!(w.total(5), 10);
        // The process slept for an hour.
        assert_eq!(w.total(3700), 0, "stale slots ignored after a step");
        w.add(3700, 2);
        assert_eq!(w.total(3700), 2);
    }

    #[test]
    fn stamps_near_u64_max_do_not_underflow() {
        let mut w = WindowedCounter::new(10);
        w.add(u64::MAX - 1, 3);
        w.add(u64::MAX, 4);
        assert_eq!(w.total(u64::MAX), 7);
        // `now` below the window length: the subtraction saturates.
        let mut early = WindowedCounter::new(10);
        early.add(0, 1);
        assert_eq!(early.total(0), 1);
    }

    #[test]
    fn rate_is_total_over_window() {
        let mut w = WindowedCounter::new(4);
        for s in 0..4 {
            w.add(s, 6);
        }
        assert_eq!(w.rate(3), 6.0);
    }
}
