//! Field-by-field diffing of two `mt-*-v1` BENCH documents with
//! per-metric tolerances — the engine behind `repro-benchdiff`.
//!
//! Both documents are flattened to `path → leaf` maps (dot paths,
//! array elements as numeric components: `outcomes.detected`,
//! `statuses.0`). The two key sets must match exactly — a metric that
//! appears or disappears is a schema break, reported either way. Each
//! shared numeric leaf is then compared under the first matching
//! [`Rule`]:
//!
//! * [`Tolerance::Exact`] — byte-equal semantics (the default: most
//!   BENCH fields are deterministic);
//! * [`Tolerance::Ignore`] — presence checked, value free (wall-clock
//!   fields);
//! * [`Tolerance::Rel`] — relative tolerance in percent, optionally
//!   directional: a `higher_is_better` metric only fails when the new
//!   value drops below `old · (1 - pct/100)`, so improvements always
//!   pass the gate.
//!
//! Non-numeric leaves (strings, bools, nulls) always compare exactly.

use std::collections::BTreeMap;

use mt_trace::Json;

/// How a metric's values may differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Values must be equal.
    Exact,
    /// Value differences are accepted (key presence is still required).
    Ignore,
    /// Relative tolerance in percent of the old value.
    Rel {
        /// Allowed drift, e.g. `5.0` for ±5 %.
        pct: f64,
        /// `Some(true)`: only a *decrease* beyond `pct` fails
        /// (throughput-like). `Some(false)`: only an *increase* fails
        /// (latency-like). `None`: either direction fails.
        higher_is_better: Option<bool>,
    },
}

/// A tolerance attached to a path pattern.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Dot-path pattern; `*` matches any run of characters (so
    /// `latency_us.*` covers the whole block).
    pub pattern: String,
    /// The comparison applied to matching paths.
    pub tolerance: Tolerance,
}

impl Rule {
    /// A rule from a pattern and tolerance.
    pub fn new(pattern: &str, tolerance: Tolerance) -> Rule {
        Rule {
            pattern: pattern.to_string(),
            tolerance,
        }
    }
}

/// Matches `path` against `pattern` where `*` matches any (possibly
/// empty) run of characters.
fn glob_match(pattern: &str, path: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == path,
        Some((head, tail)) => {
            path.starts_with(head)
                && path.len() >= head.len()
                && glob_suffix(tail, &path[head.len()..])
        }
    }
}

fn glob_suffix(pattern: &str, path: &str) -> bool {
    match pattern.split_once('*') {
        None => path.ends_with(pattern),
        Some((mid, tail)) => match path.find(mid) {
            Some(i) if !mid.is_empty() => glob_suffix(tail, &path[i + mid.len()..]),
            Some(_) => glob_suffix(tail, path),
            None => false,
        },
    }
}

/// One detected difference.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Dot path of the metric.
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

fn flatten(doc: &Json, prefix: &str, out: &mut BTreeMap<String, Json>) {
    match doc {
        Json::Obj(members) => {
            for (k, v) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}.{i}"), out);
            }
            if items.is_empty() {
                out.insert(format!("{prefix}.len"), Json::U64(0));
            }
        }
        leaf => {
            out.insert(prefix.to_string(), leaf.clone());
        }
    }
}

fn leaf_text(v: &Json) -> String {
    v.to_string()
}

/// Diffs `old` vs `new` under `rules` (first match wins; unmatched
/// paths are [`Tolerance::Exact`]). Empty result = no regression.
pub fn diff(old: &Json, new: &Json, rules: &[Rule]) -> Vec<Finding> {
    let (mut old_flat, mut new_flat) = (BTreeMap::new(), BTreeMap::new());
    flatten(old, "", &mut old_flat);
    flatten(new, "", &mut new_flat);

    let mut findings = Vec::new();
    for path in old_flat.keys() {
        if !new_flat.contains_key(path) {
            findings.push(Finding {
                path: path.clone(),
                message: "metric missing from new document".to_string(),
            });
        }
    }
    for path in new_flat.keys() {
        if !old_flat.contains_key(path) {
            findings.push(Finding {
                path: path.clone(),
                message: "metric not present in old document".to_string(),
            });
        }
    }

    for (path, old_v) in &old_flat {
        let Some(new_v) = new_flat.get(path) else {
            continue;
        };
        let tolerance = rules
            .iter()
            .find(|r| glob_match(&r.pattern, path))
            .map_or(Tolerance::Exact, |r| r.tolerance);
        if let Some(f) = compare_leaf(path, old_v, new_v, tolerance) {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path));
    findings
}

fn compare_leaf(path: &str, old: &Json, new: &Json, tolerance: Tolerance) -> Option<Finding> {
    if tolerance == Tolerance::Ignore {
        return None;
    }
    match (old.as_f64(), new.as_f64()) {
        (Some(o), Some(n)) => {
            let fail = match tolerance {
                Tolerance::Exact => o != n,
                Tolerance::Ignore => false,
                Tolerance::Rel {
                    pct,
                    higher_is_better,
                } => {
                    if o == 0.0 {
                        // A zero baseline gives a relative band no
                        // scale: the slack collapses to zero one way
                        // and to everything-passes the other (any
                        // growth of `failed_requests: 0` would sail
                        // through a `higher_is_better` band). Zero
                        // baseline ⇒ exact match required.
                        n != o
                    } else {
                        let slack = o.abs() * pct / 100.0;
                        match higher_is_better {
                            Some(true) => n < o - slack,
                            Some(false) => n > o + slack,
                            None => (n - o).abs() > slack,
                        }
                    }
                }
            };
            fail.then(|| Finding {
                path: path.to_string(),
                message: format!("{o} -> {n} exceeds {tolerance:?}"),
            })
        }
        // Null ↔ number and other type changes: exact compare.
        _ => (old != new).then(|| Finding {
            path: path.to_string(),
            message: format!("{} -> {}", leaf_text(old), leaf_text(new)),
        }),
    }
}

/// The built-in rule set for `mt-serve-bench-v1` summaries: wall-clock
/// and scheduling-luck fields are ignored (their *presence* is still
/// required, so a vanished latency block fails), everything else is
/// exact. This replaces the old `grep -v` filtering in `./ci`.
pub fn serve_profile() -> Vec<Rule> {
    [
        "elapsed_ms",
        "requests_per_second",
        "cache_hits",
        "cache_misses",
        "retries_429",
        "rejected_429_final",
        "latency_us.*",
    ]
    .iter()
    .map(|p| Rule::new(p, Tolerance::Ignore))
    .collect()
}

/// The built-in rule set for `mt-dse-v1` sweep documents
/// (`BENCH_dse.json`): the simulator is deterministic, so every cell's
/// statistics, the Pareto front, and the unified-vs-split comparison are
/// exact; only the top-level wall clock (`elapsed_ms`) is ignored.
pub fn dse_profile() -> Vec<Rule> {
    vec![Rule::new("elapsed_ms", Tolerance::Ignore)]
}

/// The built-in rule set for `mt-chaos-v1` campaign reports. The
/// *structural* fields — seed, scenario kinds, per-scenario and final
/// verdicts, injected fault counts — are a pure function of the seed
/// and stay exact. Wall-clock (`elapsed_ms`), raw accounting counts
/// (load races shift how many burst jobs land 200 vs 429), and the
/// human notes are ignored; their presence is still required.
pub fn chaos_profile() -> Vec<Rule> {
    ["elapsed_ms", "accounting.*", "scenarios.*.note"]
        .iter()
        .map(|p| Rule::new(p, Tolerance::Ignore))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_trace::json::parse;

    fn doc(text: &str) -> Json {
        parse(text).unwrap()
    }

    #[test]
    fn identical_documents_have_no_findings() {
        let a = doc(r#"{"x": 1, "y": {"z": [1, 2.5, "s"]}}"#);
        assert!(diff(&a, &a, &[]).is_empty());
    }

    #[test]
    fn exact_default_flags_any_numeric_drift() {
        let a = doc(r#"{"cycles": 100}"#);
        let b = doc(r#"{"cycles": 101}"#);
        let f = diff(&a, &b, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, "cycles");
    }

    #[test]
    fn missing_and_extra_keys_are_schema_breaks() {
        let a = doc(r#"{"x": 1, "gone": 2}"#);
        let b = doc(r#"{"x": 1, "new": 3}"#);
        let f = diff(&a, &b, &[Rule::new("*", Tolerance::Ignore)]);
        let paths: Vec<&str> = f.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["gone", "new"], "ignore never waives presence");
    }

    #[test]
    fn relative_tolerance_is_directional() {
        let a = doc(r#"{"rps": 1000.0, "p99": 100}"#);
        let throughput = [Rule::new(
            "rps",
            Tolerance::Rel {
                pct: 10.0,
                higher_is_better: Some(true),
            },
        )];
        // 20% faster: fine. 5% slower: fine. 20% slower: regression.
        assert!(diff(&a, &doc(r#"{"rps": 1200.0, "p99": 100}"#), &throughput).is_empty());
        assert!(diff(&a, &doc(r#"{"rps": 950.0, "p99": 100}"#), &throughput).is_empty());
        assert_eq!(
            diff(&a, &doc(r#"{"rps": 800.0, "p99": 100}"#), &throughput).len(),
            1
        );
        let latency = [
            Rule::new(
                "p99",
                Tolerance::Rel {
                    pct: 10.0,
                    higher_is_better: Some(false),
                },
            ),
            Rule::new("rps", Tolerance::Ignore),
        ];
        assert!(diff(&a, &doc(r#"{"rps": 1.0, "p99": 90}"#), &latency).is_empty());
        assert_eq!(
            diff(&a, &doc(r#"{"rps": 1.0, "p99": 120}"#), &latency).len(),
            1
        );
    }

    /// Zero baseline ⇒ exact match required, whichever way the band
    /// points: a relative tolerance of a zero value has no scale, and
    /// the directional forms would otherwise wave through any change
    /// on their "good" side (`failed_requests: 0` growing unbounded
    /// under a `higher`-is-better rule, say).
    #[test]
    fn zero_baseline_requires_exact_match_in_both_directions() {
        let a = doc(r#"{"failed": 0}"#);
        for dir in [Some(true), Some(false), None] {
            let rules = [Rule::new(
                "failed",
                Tolerance::Rel {
                    pct: 30.0,
                    higher_is_better: dir,
                },
            )];
            assert!(
                diff(&a, &doc(r#"{"failed": 0}"#), &rules).is_empty(),
                "0 -> 0 passes ({dir:?})"
            );
            assert_eq!(
                diff(&a, &doc(r#"{"failed": 5}"#), &rules).len(),
                1,
                "0 -> 5 fails ({dir:?})"
            );
            assert_eq!(
                diff(&a, &doc(r#"{"failed": -5}"#), &rules).len(),
                1,
                "0 -> -5 fails ({dir:?})"
            );
        }
    }

    #[test]
    fn glob_patterns_cover_blocks() {
        assert!(glob_match("latency_us.*", "latency_us.p99"));
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("a.*.c", "a.b.c"));
        assert!(!glob_match("latency_us.*", "other.p99"));
        assert!(!glob_match("a.*.c", "a.b.d"));
    }

    #[test]
    fn arrays_flatten_elementwise() {
        let a = doc(r#"{"statuses": [200, 429]}"#);
        let b = doc(r#"{"statuses": [200, 500]}"#);
        let f = diff(&a, &b, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, "statuses.1");
        // Length changes surface as missing/extra element paths.
        let c = doc(r#"{"statuses": [200]}"#);
        assert!(!diff(&a, &c, &[]).is_empty());
    }

    #[test]
    fn serve_profile_ignores_wallclock_but_requires_presence() {
        let a = doc(r#"{"ok": 64, "elapsed_ms": 15, "latency_us": {"p50": 100, "p99": 300}}"#);
        let b = doc(r#"{"ok": 64, "elapsed_ms": 900, "latency_us": {"p50": 888, "p99": 999}}"#);
        assert!(diff(&a, &b, &serve_profile()).is_empty());
        let broken = doc(r#"{"ok": 63, "elapsed_ms": 15, "latency_us": {"p50": 1, "p99": 2}}"#);
        assert_eq!(diff(&a, &broken, &serve_profile())[0].path, "ok");
        let schema_break = doc(r#"{"ok": 64, "elapsed_ms": 15}"#);
        assert!(!diff(&a, &schema_break, &serve_profile()).is_empty());
    }

    #[test]
    fn dse_profile_ignores_only_the_wall_clock() {
        let a = doc(
            r#"{"schema": "mt-dse-v1", "cells": [{"warm_hm_mflops": 3.5}],
                "pareto": [{"name": "fpu_lanes=2"}], "elapsed_ms": 10}"#,
        );
        let b = doc(
            r#"{"schema": "mt-dse-v1", "cells": [{"warm_hm_mflops": 3.5}],
                "pareto": [{"name": "fpu_lanes=2"}], "elapsed_ms": 999}"#,
        );
        assert!(diff(&a, &b, &dse_profile()).is_empty());
        let drift = doc(
            r#"{"schema": "mt-dse-v1", "cells": [{"warm_hm_mflops": 3.6}],
                "pareto": [{"name": "fpu_lanes=2"}], "elapsed_ms": 10}"#,
        );
        assert_eq!(
            diff(&a, &drift, &dse_profile())[0].path,
            "cells.0.warm_hm_mflops"
        );
    }

    #[test]
    fn chaos_profile_pins_verdicts_but_not_raw_counts() {
        let a = doc(
            r#"{"scenarios": [{"kind": "burst", "ok": true, "note": "9 jobs"}],
                "checks": {"all_ok": true}, "accounting": {"accepted": 40},
                "elapsed_ms": 120}"#,
        );
        let b = doc(
            r#"{"scenarios": [{"kind": "burst", "ok": true, "note": "changed"}],
                "checks": {"all_ok": true}, "accounting": {"accepted": 51},
                "elapsed_ms": 999}"#,
        );
        assert!(diff(&a, &b, &chaos_profile()).is_empty());
        // A flipped verdict or a reordered plan is a regression.
        let flipped = doc(
            r#"{"scenarios": [{"kind": "burst", "ok": false, "note": "9 jobs"}],
                "checks": {"all_ok": true}, "accounting": {"accepted": 40},
                "elapsed_ms": 120}"#,
        );
        assert_eq!(
            diff(&a, &flipped, &chaos_profile())[0].path,
            "scenarios.0.ok"
        );
        let reordered = doc(
            r#"{"scenarios": [{"kind": "torn-head", "ok": true, "note": "9 jobs"}],
                "checks": {"all_ok": true}, "accounting": {"accepted": 40},
                "elapsed_ms": 120}"#,
        );
        assert_eq!(
            diff(&a, &reordered, &chaos_profile())[0].path,
            "scenarios.0.kind"
        );
    }

    #[test]
    fn string_and_null_leaves_compare_exactly_even_under_rel() {
        let a = doc(r#"{"schema": "mt-x-v1", "h": null}"#);
        let b = doc(r#"{"schema": "mt-y-v1", "h": 3}"#);
        let rules = [Rule::new(
            "*",
            Tolerance::Rel {
                pct: 100.0,
                higher_is_better: None,
            },
        )];
        assert_eq!(diff(&a, &b, &rules).len(), 2);
    }
}
