//! A bounded log-linear ("HDR-style") histogram over `u64` samples.
//!
//! The serve metrics previously kept every service-cycle sample in a
//! `Vec<u64>` to compute exact nearest-rank percentiles — unbounded
//! memory under sustained traffic. This histogram replaces it with a
//! **fixed** bucket array covering the whole `u64` range at a proven
//! relative-error bound, and it is *mergeable*, so per-thread recording
//! (the `mtasm client` load generator) aggregates losslessly.
//!
//! # Bucket layout
//!
//! With `sub_bits = b`, values below `2^b` get one bucket each (exact).
//! Above that, every power-of-two octave `[2^m, 2^(m+1))` is split into
//! `2^b` equal sub-buckets of width `2^(m-b)`. The array size is
//! `(65 - b) · 2^b` buckets regardless of how many samples are recorded
//! (`b = 5` → 1920 buckets, 15 KiB).
//!
//! # Error bound
//!
//! [`HdrHistogram::quantile`] counts buckets cumulatively exactly like
//! nearest-rank counts samples, so the bucket it stops in is the bucket
//! containing the exact nearest-rank sample `x`. The returned estimate
//! is the bucket midpoint `lower + width/2`; since `x ∈ [lower,
//! lower + width)` and `width ≤ lower · 2^-b`:
//!
//! ```text
//! |estimate - x| / x  ≤  (width/2) / lower  ≤  2^-(b+1)
//! ```
//!
//! With the default `b = 5` the quantile estimate is within **1/64 ≈
//! 1.5625 %** of the exact nearest-rank value (and *exact* below `2^b`).
//! `tests/properties.rs` proves this against the exact oracle on
//! adversarial distributions.

use mt_trace::Json;

/// Default octave split (`2^5 = 32` sub-buckets per power of two):
/// quantiles within 2^-6 ≈ 1.6 % of exact, 15 KiB per histogram.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// A fixed-memory log-linear histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrHistogram {
    sub_bits: u32,
    count: u64,
    /// Saturating sum (overflow pins to `u64::MAX` rather than wrapping).
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64]>,
}

impl Default for HdrHistogram {
    fn default() -> HdrHistogram {
        HdrHistogram::new(DEFAULT_SUB_BITS)
    }
}

impl HdrHistogram {
    /// A histogram splitting each octave into `2^sub_bits` buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ sub_bits ≤ 16` (the useful range; beyond 16
    /// the array would dwarf any realistic exact buffer).
    pub fn new(sub_bits: u32) -> HdrHistogram {
        assert!((1..=16).contains(&sub_bits), "sub_bits out of range");
        let len = (65 - sub_bits as usize) << sub_bits;
        HdrHistogram {
            sub_bits,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; len].into_boxed_slice(),
        }
    }

    /// The bucket index holding `value`.
    fn index(&self, value: u64) -> usize {
        let b = self.sub_bits;
        if value >> b == 0 {
            return value as usize;
        }
        let m = 63 - value.leading_zeros();
        let octave = (m - b + 1) as usize;
        let sub = (value >> (m - b)) as usize - (1usize << b);
        (octave << b) + sub
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower(&self, i: usize) -> u64 {
        let b = self.sub_bits;
        let octave = i >> b;
        if octave == 0 {
            return i as u64;
        }
        let m = octave as u32 + b - 1;
        let sub = (i & ((1 << b) - 1)) as u64;
        (1u64 << m) + (sub << (m - b))
    }

    /// Width of bucket `i` (1 in the exact range).
    fn bucket_width(&self, i: usize) -> u64 {
        let octave = i >> self.sub_bits;
        if octave == 0 {
            1
        } else {
            1u64 << (octave as u32 - 1)
        }
    }

    /// Records one sample. O(1), no allocation.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 || sample < self.min {
            self.min = sample;
        }
        self.max = self.max.max(sample);
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.buckets[self.index(sample)] += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The documented relative-error bound of [`quantile`](Self::quantile)
    /// vs the exact nearest-rank value: `2^-(sub_bits+1)`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << (self.sub_bits + 1)) as f64
    }

    /// Nearest-rank quantile estimate (`p` in `[0, 100]`); `None` when
    /// empty. Within [`relative_error_bound`](Self::relative_error_bound)
    /// of the exact nearest-rank sample, clamped to `[min, max]` so the
    /// tails never report values outside the observed range.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let estimate = self.bucket_lower(i) + self.bucket_width(i) / 2;
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        unreachable!("cumulative bucket count reaches self.count");
    }

    /// Merges `other` into `self` — bucket counts add losslessly, so
    /// merge order never changes any quantile (associative and
    /// commutative; `tests/properties.rs` proves both).
    ///
    /// # Panics
    ///
    /// Panics when the two histograms use different `sub_bits` (their
    /// buckets would not line up).
    pub fn merge(&mut self, other: &HdrHistogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms with different sub_bits"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// Resident size of the bucket array — a constant for a given
    /// `sub_bits`, independent of `count` (the O(1)-memory regression
    /// test in `mt-serve` pins this).
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<u64>()
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (self.bucket_lower(i), n))
    }

    /// JSON summary: count/min/max/mean plus the tail quantiles the
    /// BENCH trajectory tracks. Keys are stable for byte-diffing.
    pub fn to_json(&self) -> Json {
        let q = |p| self.quantile(p).map_or(Json::Null, Json::U64);
        Json::obj([
            ("count", Json::U64(self.count)),
            ("min", Json::U64(self.min)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            ("p50", q(50.0)),
            ("p90", q(90.0)),
            ("p99", q(99.0)),
            ("p999", q(99.9)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank — the oracle the histogram is judged against.
    fn exact(samples: &[u64], p: f64) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    #[test]
    fn exact_below_the_linear_range() {
        let mut h = HdrHistogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            assert_eq!(h.quantile(p), exact(&(0..32).collect::<Vec<_>>(), p));
        }
    }

    #[test]
    fn quantile_within_bound_on_wide_range() {
        let mut h = HdrHistogram::default();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &s in &samples {
            h.record(s);
        }
        let bound = h.relative_error_bound();
        for p in [1.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let e = exact(&samples, p).unwrap();
            let got = h.quantile(p).unwrap();
            let rel = (got as f64 - e as f64).abs() / e as f64;
            assert!(rel <= bound, "p{p}: got {got}, exact {e}, rel {rel}");
        }
    }

    #[test]
    fn extremes_round_trip() {
        let mut h = HdrHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.quantile(0.0), Some(0));
        // The top bucket's midpoint overflows nothing and clamps to max.
        let p100 = h.quantile(100.0).unwrap();
        assert!(p100 as f64 >= u64::MAX as f64 * (1.0 - h.relative_error_bound()));
    }

    #[test]
    fn empty_histogram_is_none() {
        let h = HdrHistogram::default();
        assert_eq!(h.quantile(50.0), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn memory_is_constant_in_sample_count() {
        let mut h = HdrHistogram::default();
        let before = h.memory_bytes();
        for i in 0..100_000u64 {
            h.record(i * 31 % 1_000_000);
        }
        assert_eq!(h.memory_bytes(), before);
        assert_eq!(before, 1920 * 8);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (a_samples, b_samples): (Vec<u64>, Vec<u64>) = (
            (0..500).map(|i| i * 7).collect(),
            (0..300).map(|i| i * i).collect(),
        );
        let mut a = HdrHistogram::default();
        let mut b = HdrHistogram::default();
        let mut all = HdrHistogram::default();
        for &s in &a_samples {
            a.record(s);
            all.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge is lossless w.r.t. bucket counts");
    }

    #[test]
    fn json_summary_shape() {
        let mut h = HdrHistogram::default();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let doc = h.to_json();
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("p50").unwrap().as_f64(), Some(20.0));
        assert!(mt_trace::json::validate(&doc.pretty()).is_ok());
    }
}
