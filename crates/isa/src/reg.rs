//! Register name types.
//!
//! The FPU register file holds 52 general-purpose 64-bit registers (§2.2.1:
//! the 6-bit coprocessor register address space is shared with other
//! coprocessors, limiting the FPU to 52). The scalar CPU substrate has 32
//! integer registers with `r0` hard-wired to zero.

use std::fmt;

/// Number of addressable FPU registers (R0–R51).
pub const NUM_FPU_REGS: u8 = 52;

/// Number of CPU integer registers (r0 is hard-wired to zero).
pub const NUM_CPU_REGS: u8 = 32;

/// An FPU register name, guaranteed in range `0..52`.
///
/// ```
/// use mt_isa::FReg;
/// let r = FReg::new(10);
/// assert_eq!(r.index(), 10);
/// assert_eq!(r.to_string(), "R10");
/// assert!(FReg::try_new(52).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 52`.
    pub const fn new(index: u8) -> FReg {
        assert!(index < NUM_FPU_REGS, "FPU register out of range");
        FReg(index)
    }

    /// Creates a register name, returning `None` when out of range.
    pub const fn try_new(index: u8) -> Option<FReg> {
        if index < NUM_FPU_REGS {
            Some(FReg(index))
        } else {
            None
        }
    }

    /// The register number.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// The register `offset` places above this one, as produced by the
    /// vector-issue specifier incrementers. Returns `None` when the run of
    /// registers would leave the file.
    pub const fn offset(self, offset: u8) -> Option<FReg> {
        FReg::try_new(self.0 + offset)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A CPU integer register name, guaranteed in range `0..32`.
///
/// Register `r0` always reads as zero; writes to it are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IReg(u8);

impl IReg {
    /// The zero register.
    pub const ZERO: IReg = IReg(0);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> IReg {
        assert!(index < NUM_CPU_REGS, "CPU register out of range");
        IReg(index)
    }

    /// Creates a register name, returning `None` when out of range.
    pub const fn try_new(index: u8) -> Option<IReg> {
        if index < NUM_CPU_REGS {
            Some(IReg(index))
        } else {
            None
        }
    }

    /// The register number.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// `true` for the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freg_bounds() {
        assert_eq!(FReg::new(0).index(), 0);
        assert_eq!(FReg::new(51).index(), 51);
        assert!(FReg::try_new(52).is_none());
        assert!(FReg::try_new(63).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_new_panics_out_of_range() {
        FReg::new(52);
    }

    #[test]
    fn freg_offset_walks_the_file() {
        let r = FReg::new(48);
        assert_eq!(r.offset(3), Some(FReg::new(51)));
        assert_eq!(r.offset(4), None, "R52 does not exist");
    }

    #[test]
    fn ireg_zero() {
        assert!(IReg::ZERO.is_zero());
        assert!(!IReg::new(1).is_zero());
        assert!(IReg::try_new(32).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FReg::new(7).to_string(), "R7");
        assert_eq!(IReg::new(7).to_string(), "r7");
    }
}
