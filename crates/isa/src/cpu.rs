//! The scalar CPU substrate instruction set.
//!
//! The paper specifies the FPU ALU format precisely (Fig. 3) but leaves the
//! CPU side at the block-diagram level, so this substrate defines a minimal
//! 32-bit RISC in the MultiTitan spirit: 32 integer registers (`r0` = 0),
//! register-to-register integer ALU operations, loads/stores, compare-and-
//! branch, and the two coprocessor memory operations (`fld`/`fst`) that move
//! 64-bit doubles between the data cache and the FPU register file.
//!
//! Encoding (all words 32 bits; the top 4 bits are the major opcode, and
//! opcode [`crate::fpu::FPU_ALU_OPCODE`] words are FPU ALU instructions):
//!
//! ```text
//! 0  SYS    |0000|rd:5|…|funct|              nop=0, halt=1, mfpsw=2, clrpsw=3
//! 1  ALU    |0001|rd:5|rs1:5|rs2:5|funct:13|
//! 2  ADDI   |0010|rd:5|rs1:5|imm:18s|
//! 3  LUI    |0011|rd:5|imm:23|                rd = imm << 14
//! 4  LW     |0100|rd:5|base:5|off:18s|        bytes
//! 5  SW     |0101|rs:5|base:5|off:18s|        bytes
//! 6  FALU   (Fig. 3 format, see `fpu`)
//! 7  FLD    |0111|fr:6|base:5|off:17s|        bytes, 8-aligned
//! 8  FST    |1000|fr:6|base:5|off:17s|        bytes, 8-aligned
//! 9  BEQ    |1001|rs1:5|rs2:5|off:18s|        words, relative to next pc
//! 10 BNE    |1010|...|
//! 11 BLT    |1011|...|                        signed compare
//! 12 BGE    |1100|...|
//! 13 J      |1101|target:28|                  absolute word address
//! 14 JAL    |1110|target:28|                  link in r31
//! 15 JR     |1111|rs1:5|
//! ```

use std::fmt;

use crate::fpu::{FpuAluInstr, FpuInstrError, FPU_ALU_OPCODE};
use crate::reg::{FReg, IReg};

/// Integer ALU operations (R-type funct values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by rs2 mod 32).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than, signed: rd = (rs1 < rs2) as i32.
    Slt,
    /// Integer multiply (low 32 bits).
    Mul,
}

impl AluOp {
    const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Mul,
    ];

    fn funct(self) -> u32 {
        self as u32
    }

    fn from_funct(f: u32) -> Option<AluOp> {
        AluOp::ALL.get(f as usize).copied()
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Mul => "mul",
        }
    }

    /// Parses an assembly mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<AluOp> {
        AluOp::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

/// Compare-and-branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// rs1 == rs2
    Eq,
    /// rs1 != rs2
    Ne,
    /// rs1 < rs2 (signed)
    Lt,
    /// rs1 >= rs2 (signed)
    Ge,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop simulation.
    Halt,
    /// Move the FPU PSW into an integer register: exception flags in bits
    /// 0–4, first-overflow destination specifier in bits 8–13 with bit 15
    /// as its valid flag ("the FPU PSW is conceptually in the register
    /// file", §2; the overflow capture is §2.3.1).
    Mfpsw {
        /// Destination integer register.
        rd: IReg,
    },
    /// Clear the FPU PSW (the supervisor write).
    ClrPsw,
    /// Integer register-register operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: IReg,
        /// First source.
        rs1: IReg,
        /// Second source.
        rs2: IReg,
    },
    /// Add immediate: `rd = rs1 + imm`.
    Addi {
        /// Destination.
        rd: IReg,
        /// Source.
        rs1: IReg,
        /// Signed immediate, 18 bits.
        imm: i32,
    },
    /// Load upper immediate: `rd = imm << 14`.
    Lui {
        /// Destination.
        rd: IReg,
        /// Unsigned immediate, 23 bits.
        imm: u32,
    },
    /// Load 32-bit word: `rd = mem32[rs(base) + offset]`.
    Lw {
        /// Destination.
        rd: IReg,
        /// Base address register.
        base: IReg,
        /// Signed byte offset, 18 bits.
        offset: i32,
    },
    /// Store 32-bit word.
    Sw {
        /// Value source.
        rs: IReg,
        /// Base address register.
        base: IReg,
        /// Signed byte offset, 18 bits.
        offset: i32,
    },
    /// Load a 64-bit double into an FPU register.
    Fld {
        /// FPU destination register.
        fr: FReg,
        /// Base address register.
        base: IReg,
        /// Signed byte offset, 17 bits (8-byte aligned).
        offset: i32,
    },
    /// Store a 64-bit double from an FPU register.
    Fst {
        /// FPU source register.
        fr: FReg,
        /// Base address register.
        base: IReg,
        /// Signed byte offset, 17 bits (8-byte aligned).
        offset: i32,
    },
    /// Compare-and-branch. Target = pc + 1 + offset (in words).
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compare source.
        rs1: IReg,
        /// Second compare source.
        rs2: IReg,
        /// Signed word offset from the instruction after the branch.
        offset: i32,
    },
    /// Unconditional jump to an absolute word address.
    Jump {
        /// Absolute word address.
        target: u32,
    },
    /// Jump and link (return address in r31).
    Jal {
        /// Absolute word address.
        target: u32,
    },
    /// Jump to register.
    Jr {
        /// Register holding the word address.
        rs: IReg,
    },
    /// An FPU ALU (vector/scalar arithmetic) instruction.
    Falu(FpuAluInstr),
}

/// Errors from [`Instr::encode`] / [`Instr::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown SYS funct or ALU funct.
    BadFunct(u32),
    /// An immediate does not fit its field.
    ImmediateOutOfRange {
        /// The offending value.
        value: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// A jump target does not fit 28 bits.
    TargetOutOfRange(u32),
    /// An FPU register specifier exceeds 51.
    BadFReg(u8),
    /// Error in an embedded FPU ALU instruction.
    Fpu(FpuInstrError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadFunct(x) => write!(f, "unknown funct {x}"),
            DecodeError::ImmediateOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
            DecodeError::TargetOutOfRange(t) => write!(f, "jump target {t:#x} exceeds 28 bits"),
            DecodeError::BadFReg(r) => write!(f, "FPU register {r} exceeds 51"),
            DecodeError::Fpu(e) => write!(f, "FPU instruction: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<FpuInstrError> for DecodeError {
    fn from(e: FpuInstrError) -> DecodeError {
        DecodeError::Fpu(e)
    }
}

fn check_simm(value: i32, bits: u32) -> Result<u32, DecodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if (value as i64) < min || (value as i64) > max {
        return Err(DecodeError::ImmediateOutOfRange {
            value: value as i64,
            bits,
        });
    }
    Ok((value as u32) & ((1 << bits) - 1))
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

impl Instr {
    /// Encodes to a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns an error when an immediate, offset, or target does not fit
    /// its field.
    pub fn encode(&self) -> Result<u32, DecodeError> {
        let w = |op: u32, rest: u32| (op << 28) | rest;
        Ok(match *self {
            Instr::Nop => w(0, 0),
            Instr::Halt => w(0, 1),
            Instr::Mfpsw { rd } => w(0, ((rd.index() as u32) << 23) | 2),
            Instr::ClrPsw => w(0, 3),
            Instr::Alu { op, rd, rs1, rs2 } => w(
                1,
                ((rd.index() as u32) << 23)
                    | ((rs1.index() as u32) << 18)
                    | ((rs2.index() as u32) << 13)
                    | op.funct(),
            ),
            Instr::Addi { rd, rs1, imm } => w(
                2,
                ((rd.index() as u32) << 23) | ((rs1.index() as u32) << 18) | check_simm(imm, 18)?,
            ),
            Instr::Lui { rd, imm } => {
                if imm >= 1 << 23 {
                    return Err(DecodeError::ImmediateOutOfRange {
                        value: imm as i64,
                        bits: 23,
                    });
                }
                w(3, ((rd.index() as u32) << 23) | imm)
            }
            Instr::Lw { rd, base, offset } => w(
                4,
                ((rd.index() as u32) << 23)
                    | ((base.index() as u32) << 18)
                    | check_simm(offset, 18)?,
            ),
            Instr::Sw { rs, base, offset } => w(
                5,
                ((rs.index() as u32) << 23)
                    | ((base.index() as u32) << 18)
                    | check_simm(offset, 18)?,
            ),
            Instr::Falu(f) => f.encode(),
            Instr::Fld { fr, base, offset } => w(
                7,
                ((fr.index() as u32) << 22)
                    | ((base.index() as u32) << 17)
                    | check_simm(offset, 17)?,
            ),
            Instr::Fst { fr, base, offset } => w(
                8,
                ((fr.index() as u32) << 22)
                    | ((base.index() as u32) << 17)
                    | check_simm(offset, 17)?,
            ),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let op = match cond {
                    BranchCond::Eq => 9,
                    BranchCond::Ne => 10,
                    BranchCond::Lt => 11,
                    BranchCond::Ge => 12,
                };
                w(
                    op,
                    ((rs1.index() as u32) << 23)
                        | ((rs2.index() as u32) << 18)
                        | check_simm(offset, 18)?,
                )
            }
            Instr::Jump { target } => {
                if target >= 1 << 28 {
                    return Err(DecodeError::TargetOutOfRange(target));
                }
                w(13, target)
            }
            Instr::Jal { target } => {
                if target >= 1 << 28 {
                    return Err(DecodeError::TargetOutOfRange(target));
                }
                w(14, target)
            }
            Instr::Jr { rs } => w(15, (rs.index() as u32) << 23),
        })
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown functs, out-of-range FPU register
    /// specifiers, and malformed embedded FPU ALU instructions.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = word >> 28;
        let ireg5 = |sh: u32| IReg::new(((word >> sh) & 0x1F) as u8);
        let freg6 = |sh: u32| {
            FReg::try_new(((word >> sh) & 0x3F) as u8)
                .ok_or(DecodeError::BadFReg(((word >> sh) & 0x3F) as u8))
        };
        Ok(match op {
            0 => match word & 0x007F_FFFF {
                0 if word & 0x0FFF_FFFF == 0 => Instr::Nop,
                1 => Instr::Halt,
                2 => Instr::Mfpsw { rd: ireg5(23) },
                3 => Instr::ClrPsw,
                f => return Err(DecodeError::BadFunct(f)),
            },
            1 => Instr::Alu {
                op: AluOp::from_funct(word & 0x1FFF).ok_or(DecodeError::BadFunct(word & 0x1FFF))?,
                rd: ireg5(23),
                rs1: ireg5(18),
                rs2: ireg5(13),
            },
            2 => Instr::Addi {
                rd: ireg5(23),
                rs1: ireg5(18),
                imm: sign_extend(word & 0x3FFFF, 18),
            },
            3 => Instr::Lui {
                rd: ireg5(23),
                imm: word & 0x7F_FFFF,
            },
            4 => Instr::Lw {
                rd: ireg5(23),
                base: ireg5(18),
                offset: sign_extend(word & 0x3FFFF, 18),
            },
            5 => Instr::Sw {
                rs: ireg5(23),
                base: ireg5(18),
                offset: sign_extend(word & 0x3FFFF, 18),
            },
            FPU_ALU_OPCODE => Instr::Falu(FpuAluInstr::decode(word)?),
            7 => Instr::Fld {
                fr: freg6(22)?,
                base: ireg5(17),
                offset: sign_extend(word & 0x1FFFF, 17),
            },
            8 => Instr::Fst {
                fr: freg6(22)?,
                base: ireg5(17),
                offset: sign_extend(word & 0x1FFFF, 17),
            },
            9..=12 => Instr::Branch {
                cond: match op {
                    9 => BranchCond::Eq,
                    10 => BranchCond::Ne,
                    11 => BranchCond::Lt,
                    _ => BranchCond::Ge,
                },
                rs1: ireg5(23),
                rs2: ireg5(18),
                offset: sign_extend(word & 0x3FFFF, 18),
            },
            13 => Instr::Jump {
                target: word & 0x0FFF_FFFF,
            },
            14 => Instr::Jal {
                target: word & 0x0FFF_FFFF,
            },
            15 => Instr::Jr { rs: ireg5(23) },
            _ => unreachable!("op is 4 bits"),
        })
    }

    /// `true` for instructions that reference data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Lw { .. } | Instr::Sw { .. } | Instr::Fld { .. } | Instr::Fst { .. }
        )
    }

    /// `true` for FPU loads/stores (the operations the Load/Store IR
    /// handles).
    pub fn is_fpu_mem(&self) -> bool {
        matches!(self, Instr::Fld { .. } | Instr::Fst { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Mfpsw { rd } => write!(f, "mfpsw {rd}"),
            Instr::ClrPsw => write!(f, "clrpsw"),
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Instr::Lw { rd, base, offset } => write!(f, "lw {rd}, {offset}({base})"),
            Instr::Sw { rs, base, offset } => write!(f, "sw {rs}, {offset}({base})"),
            Instr::Fld { fr, base, offset } => write!(f, "fld {fr}, {offset}({base})"),
            Instr::Fst { fr, base, offset } => write!(f, "fst {fr}, {offset}({base})"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic()),
            Instr::Jump { target } => write!(f, "j {target:#x}"),
            Instr::Jal { target } => write!(f, "jal {target:#x}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Falu(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_fparith::FpOp;

    fn ir(i: u8) -> IReg {
        IReg::new(i)
    }

    fn roundtrip(i: Instr) {
        let w = i.encode().unwrap_or_else(|e| panic!("encode {i}: {e}"));
        assert_eq!(Instr::decode(w).unwrap(), i, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_every_form() {
        roundtrip(Instr::Nop);
        roundtrip(Instr::Halt);
        roundtrip(Instr::Mfpsw { rd: ir(9) });
        roundtrip(Instr::ClrPsw);
        for op in AluOp::ALL {
            roundtrip(Instr::Alu {
                op,
                rd: ir(1),
                rs1: ir(2),
                rs2: ir(3),
            });
        }
        roundtrip(Instr::Addi {
            rd: ir(31),
            rs1: ir(0),
            imm: -131072,
        });
        roundtrip(Instr::Addi {
            rd: ir(1),
            rs1: ir(1),
            imm: 131071,
        });
        roundtrip(Instr::Lui {
            rd: ir(5),
            imm: (1 << 23) - 1,
        });
        roundtrip(Instr::Lw {
            rd: ir(4),
            base: ir(5),
            offset: -4,
        });
        roundtrip(Instr::Sw {
            rs: ir(4),
            base: ir(5),
            offset: 1024,
        });
        roundtrip(Instr::Fld {
            fr: FReg::new(51),
            base: ir(2),
            offset: -8,
        });
        roundtrip(Instr::Fst {
            fr: FReg::new(0),
            base: ir(2),
            offset: 65528,
        });
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
        ] {
            roundtrip(Instr::Branch {
                cond,
                rs1: ir(6),
                rs2: ir(7),
                offset: -100,
            });
        }
        roundtrip(Instr::Jump {
            target: 0x0FFF_FFFF,
        });
        roundtrip(Instr::Jal { target: 42 });
        roundtrip(Instr::Jr { rs: ir(31) });
        roundtrip(Instr::Falu(FpuAluInstr::scalar(
            FpOp::Add,
            FReg::new(1),
            FReg::new(2),
            FReg::new(3),
        )));
    }

    #[test]
    fn immediates_out_of_range_rejected() {
        assert!(matches!(
            Instr::Addi {
                rd: ir(1),
                rs1: ir(0),
                imm: 131072
            }
            .encode(),
            Err(DecodeError::ImmediateOutOfRange { bits: 18, .. })
        ));
        assert!(matches!(
            Instr::Fld {
                fr: FReg::new(0),
                base: ir(0),
                offset: 1 << 16
            }
            .encode(),
            Err(DecodeError::ImmediateOutOfRange { bits: 17, .. })
        ));
        assert!(matches!(
            Instr::Jump { target: 1 << 28 }.encode(),
            Err(DecodeError::TargetOutOfRange(_))
        ));
    }

    #[test]
    fn branch_condition_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(!BranchCond::Eq.eval(3, 4));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Lt.eval(0, -1));
        assert!(BranchCond::Ge.eval(0, -1));
        assert!(BranchCond::Ge.eval(5, 5));
    }

    #[test]
    fn decode_rejects_bad_funct() {
        // SYS with funct 7.
        assert!(matches!(Instr::decode(7), Err(DecodeError::BadFunct(7))));
        // Nop demands a fully-zero word (stray rd bits are invalid).
        assert!(Instr::decode(1 << 23).is_err());
        // ALU with funct 10 exists (Mul); 11 does not.
        assert!(matches!(
            Instr::decode((1 << 28) | 11),
            Err(DecodeError::BadFunct(11))
        ));
    }

    #[test]
    fn decode_rejects_bad_fpu_register_in_fld() {
        // FLD with fr = 52.
        let word = (7u32 << 28) | (52 << 22);
        assert_eq!(Instr::decode(word), Err(DecodeError::BadFReg(52)));
    }

    #[test]
    fn falu_embeds_figure_3_format() {
        let i =
            FpuAluInstr::vector(FpOp::Mul, FReg::new(16), FReg::new(0), FReg::new(8), 4).unwrap();
        let w = Instr::Falu(i).encode().unwrap();
        assert_eq!(w >> 28, FPU_ALU_OPCODE);
        assert_eq!(Instr::decode(w).unwrap(), Instr::Falu(i));
    }

    #[test]
    fn display_disassembly() {
        assert_eq!(
            Instr::Addi {
                rd: ir(1),
                rs1: ir(2),
                imm: -5
            }
            .to_string(),
            "addi r1, r2, -5"
        );
        assert_eq!(
            Instr::Fld {
                fr: FReg::new(3),
                base: ir(4),
                offset: 16
            }
            .to_string(),
            "fld R3, 16(r4)"
        );
        assert_eq!(
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: ir(1),
                rs2: ir(2),
                offset: -3
            }
            .to_string(),
            "blt r1, r2, -3"
        );
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Lw {
            rd: ir(1),
            base: ir(2),
            offset: 0
        }
        .is_memory());
        assert!(Instr::Fst {
            fr: FReg::new(1),
            base: ir(2),
            offset: 0
        }
        .is_fpu_mem());
        assert!(!Instr::Nop.is_memory());
        assert!(!Instr::Lw {
            rd: ir(1),
            base: ir(2),
            offset: 0
        }
        .is_fpu_mem());
    }
}
