//! The 32-bit FPU ALU instruction format (Fig. 3 of the paper).
//!
//! ```text
//! |< 4 >|<  6  >|<  6  >|<  6  >|<2>|<2>|< 4 >|1|1|
//! |  op |  Rr   |  Ra   |  Rb   |unit|fnc| VL−1|SRa|SRb|
//! ```
//!
//! The vector-length field holds `VL − 1`, so lengths run 1–16. The SRa/SRb
//! *stride* bits choose whether each source specifier increments between
//! elements; the result specifier Rr always increments. A scalar operation
//! is simply a vector of length one. These few fields are the entire
//! architectural surface of the paper's vector capability.

use std::fmt;

use mt_fparith::FpOp;

use crate::reg::FReg;

/// The 4-bit major opcode identifying an FPU ALU instruction in the
/// instruction stream (the paper's Fig. 3 shows opcode 6).
pub const FPU_ALU_OPCODE: u32 = 6;

/// Maximum vector length expressible in the 4-bit `VL − 1` field.
pub const MAX_VECTOR_LEN: u8 = 16;

/// Errors constructing or decoding an FPU ALU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpuInstrError {
    /// Vector length outside `1..=16`.
    BadVectorLength(u8),
    /// A register run walks past R51 (checked per striding field).
    RegisterRunOutOfRange(FReg, u8),
    /// The word's major opcode is not `FPU_ALU_OPCODE`.
    NotFpuAlu(u32),
    /// The unit/func combination is reserved in Fig. 4.
    ReservedOperation { unit: u8, func: u8 },
    /// A register specifier exceeds 51.
    BadRegister(u8),
}

impl fmt::Display for FpuInstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FpuInstrError::BadVectorLength(v) => write!(f, "vector length {v} not in 1..=16"),
            FpuInstrError::RegisterRunOutOfRange(r, vl) => {
                write!(f, "register run {r}..+{vl} leaves the register file")
            }
            FpuInstrError::NotFpuAlu(w) => {
                write!(f, "word {w:#010x} is not an FPU ALU instruction")
            }
            FpuInstrError::ReservedOperation { unit, func } => {
                write!(f, "reserved operation: unit {unit} func {func}")
            }
            FpuInstrError::BadRegister(r) => write!(f, "register specifier {r} exceeds 51"),
        }
    }
}

impl std::error::Error for FpuInstrError {}

/// One FPU ALU instruction: a vector operation of length 1–16 over
/// consecutive registers.
///
/// Construct with [`FpuAluInstr::scalar`] / [`FpuAluInstr::vector`] /
/// [`FpuAluInstr::new`]; the constructors validate that every register run
/// implied by the length and stride bits stays inside the 52-register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpuAluInstr {
    /// Result register (first element).
    pub rr: FReg,
    /// First source register (first element).
    pub ra: FReg,
    /// Second source register (first element).
    pub rb: FReg,
    /// Operation.
    pub op: FpOp,
    /// Vector length, `1..=16`.
    pub vl: u8,
    /// Stride bit for Ra: when set, Ra increments between elements.
    pub sra: bool,
    /// Stride bit for Rb: when set, Rb increments between elements.
    pub srb: bool,
}

impl FpuAluInstr {
    /// Builds a fully general instruction.
    ///
    /// # Errors
    ///
    /// Rejects vector lengths outside `1..=16` and register runs that leave
    /// the register file (Rr always strides; Ra/Rb only when their stride
    /// bit is set).
    pub fn new(
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
        sra: bool,
        srb: bool,
    ) -> Result<FpuAluInstr, FpuInstrError> {
        if !(1..=MAX_VECTOR_LEN).contains(&vl) {
            return Err(FpuInstrError::BadVectorLength(vl));
        }
        let last = vl - 1;
        if rr.offset(last).is_none() {
            return Err(FpuInstrError::RegisterRunOutOfRange(rr, vl));
        }
        if sra && ra.offset(last).is_none() {
            return Err(FpuInstrError::RegisterRunOutOfRange(ra, vl));
        }
        if srb && rb.offset(last).is_none() {
            return Err(FpuInstrError::RegisterRunOutOfRange(rb, vl));
        }
        Ok(FpuAluInstr {
            rr,
            ra,
            rb,
            op,
            vl,
            sra,
            srb,
        })
    }

    /// Builds a scalar operation (vector length one).
    pub fn scalar(op: FpOp, rr: FReg, ra: FReg, rb: FReg) -> FpuAluInstr {
        FpuAluInstr::new(op, rr, ra, rb, 1, false, false)
            .expect("scalar instructions are always in range")
    }

    /// Builds a vector operation with both sources striding
    /// (`vector := vector op vector`).
    pub fn vector(
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
    ) -> Result<FpuAluInstr, FpuInstrError> {
        FpuAluInstr::new(op, rr, ra, rb, vl, true, true)
    }

    /// Builds a vector–scalar operation: Ra strides, Rb is a scalar
    /// broadcast (`vector := vector op scalar`).
    pub fn vector_scalar(
        op: FpOp,
        rr: FReg,
        ra: FReg,
        rb: FReg,
        vl: u8,
    ) -> Result<FpuAluInstr, FpuInstrError> {
        FpuAluInstr::new(op, rr, ra, rb, vl, true, false)
    }

    /// The registers read and written by element `i` (0-based), following
    /// the specifier-increment rule.
    ///
    /// # Panics
    ///
    /// Panics if `i >= vl`.
    #[inline]
    pub fn element(&self, i: u8) -> ElementRefs {
        assert!(
            i < self.vl,
            "element index {i} out of range for VL {}",
            self.vl
        );
        ElementRefs {
            rr: self.rr.offset(i).expect("validated at construction"),
            ra: if self.sra {
                self.ra.offset(i).expect("validated at construction")
            } else {
                self.ra
            },
            rb: if self.srb {
                self.rb.offset(i).expect("validated at construction")
            } else {
                self.rb
            },
        }
    }

    /// Encodes to the 32-bit format of Fig. 3.
    pub fn encode(&self) -> u32 {
        let (unit, func) = self.op.unit_func();
        (FPU_ALU_OPCODE << 28)
            | ((self.rr.index() as u32) << 22)
            | ((self.ra.index() as u32) << 16)
            | ((self.rb.index() as u32) << 10)
            | ((unit as u32) << 8)
            | ((func as u32) << 6)
            | (((self.vl - 1) as u32) << 2)
            | ((self.sra as u32) << 1)
            | (self.srb as u32)
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Rejects words whose major opcode is not [`FPU_ALU_OPCODE`], reserved
    /// unit/func combinations, out-of-range register specifiers, and
    /// register runs that leave the file.
    pub fn decode(word: u32) -> Result<FpuAluInstr, FpuInstrError> {
        if word >> 28 != FPU_ALU_OPCODE {
            return Err(FpuInstrError::NotFpuAlu(word));
        }
        let reg = |v: u32| FReg::try_new(v as u8).ok_or(FpuInstrError::BadRegister(v as u8));
        let rr = reg((word >> 22) & 0x3F)?;
        let ra = reg((word >> 16) & 0x3F)?;
        let rb = reg((word >> 10) & 0x3F)?;
        let unit = ((word >> 8) & 0x3) as u8;
        let func = ((word >> 6) & 0x3) as u8;
        let op = FpOp::from_unit_func(unit, func)
            .ok_or(FpuInstrError::ReservedOperation { unit, func })?;
        let vl = (((word >> 2) & 0xF) + 1) as u8;
        let sra = (word >> 1) & 1 == 1;
        let srb = word & 1 == 1;
        FpuAluInstr::new(op, rr, ra, rb, vl, sra, srb)
    }

    /// Number of register-file reads the instruction performs per element
    /// (unary operations read only Ra).
    pub fn reads_per_element(&self) -> u8 {
        if self.op.is_unary() {
            1
        } else {
            2
        }
    }
}

/// The concrete registers touched by one vector element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRefs {
    /// Element result register.
    pub rr: FReg,
    /// Element first source.
    pub ra: FReg,
    /// Element second source.
    pub rb: FReg,
}

impl fmt::Display for FpuAluInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Vector syntax: fadd R16..R19, R0..R3, R8  (ranges shown only for
        // striding fields).
        let range = |r: FReg, strides: bool| -> String {
            if self.vl > 1 && strides {
                format!("{}..{}", r, FReg::new(r.index() + self.vl - 1))
            } else {
                r.to_string()
            }
        };
        write!(
            f,
            "{} {}, {}",
            self.op,
            range(self.rr, true),
            range(self.ra, self.sra),
        )?;
        if !self.op.is_unary() {
            write!(f, ", {}", range(self.rb, self.srb))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> FReg {
        FReg::new(i)
    }

    #[test]
    fn scalar_roundtrip() {
        let i = FpuAluInstr::scalar(FpOp::Mul, r(10), r(20), r(30));
        assert_eq!(FpuAluInstr::decode(i.encode()).unwrap(), i);
        assert_eq!(i.vl, 1);
    }

    #[test]
    fn vector_roundtrip_all_ops() {
        for op in mt_fparith::op::ALL_OPS {
            let i = FpuAluInstr::vector(op, r(16), r(0), r(8), 8).unwrap();
            assert_eq!(FpuAluInstr::decode(i.encode()).unwrap(), i, "{op}");
        }
    }

    #[test]
    fn vl_field_is_length_minus_one() {
        let i = FpuAluInstr::vector(FpOp::Add, r(0), r(16), r(32), 16).unwrap();
        assert_eq!((i.encode() >> 2) & 0xF, 15);
        let i = FpuAluInstr::scalar(FpOp::Add, r(0), r(1), r(2));
        assert_eq!((i.encode() >> 2) & 0xF, 0);
    }

    #[test]
    fn length_validation() {
        assert_eq!(
            FpuAluInstr::new(FpOp::Add, r(0), r(1), r(2), 0, true, true),
            Err(FpuInstrError::BadVectorLength(0))
        );
        assert_eq!(
            FpuAluInstr::new(FpOp::Add, r(0), r(1), r(2), 17, true, true),
            Err(FpuInstrError::BadVectorLength(17))
        );
    }

    #[test]
    fn register_run_validation() {
        // Rr run R48..R55 leaves the file.
        assert!(matches!(
            FpuAluInstr::vector(FpOp::Add, r(48), r(0), r(8), 8),
            Err(FpuInstrError::RegisterRunOutOfRange(_, 8))
        ));
        // Non-striding source at R51 is fine even for long vectors.
        let i = FpuAluInstr::vector_scalar(FpOp::Mul, r(0), r(8), r(51), 16).unwrap();
        assert_eq!(i.element(15).rb, r(51));
        // But a striding source at R51 is not.
        assert!(FpuAluInstr::vector(FpOp::Mul, r(0), r(51), r(8), 2).is_err());
    }

    #[test]
    fn element_specifier_increment_rule() {
        // Fig. 6 linear-sum shape: R8 := R8 + R[7..0] reversed — here the
        // canonical version: sources stride, result strides.
        let i = FpuAluInstr::new(FpOp::Add, r(8), r(8), r(0), 8, false, true).unwrap();
        // Scalar Ra stays, Rb strides, Rr strides.
        let e0 = i.element(0);
        assert_eq!((e0.rr, e0.ra, e0.rb), (r(8), r(8), r(0)));
        let e7 = i.element(7);
        assert_eq!((e7.rr, e7.ra, e7.rb), (r(15), r(8), r(7)));
    }

    #[test]
    fn fibonacci_instruction_of_figure_8() {
        // R2 := R1 + R0 with VL 8: element i computes R(2+i) := R(1+i) + R(0+i).
        let fib = FpuAluInstr::vector(FpOp::Add, r(2), r(1), r(0), 8).unwrap();
        for i in 0..8 {
            let e = fib.element(i);
            assert_eq!(e.rr.index(), 2 + i);
            assert_eq!(e.ra.index(), 1 + i);
            assert_eq!(e.rb.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn element_index_bounds_checked() {
        let i = FpuAluInstr::scalar(FpOp::Add, r(0), r(1), r(2));
        i.element(1);
    }

    #[test]
    fn decode_rejects_foreign_opcodes() {
        assert!(matches!(
            FpuAluInstr::decode(0x1000_0000),
            Err(FpuInstrError::NotFpuAlu(_))
        ));
    }

    #[test]
    fn decode_rejects_reserved_unit_func() {
        // unit 0 is reserved: craft a word with unit=0.
        let word = FPU_ALU_OPCODE << 28;
        assert!(matches!(
            FpuAluInstr::decode(word),
            Err(FpuInstrError::ReservedOperation { unit: 0, .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_registers() {
        // Rr = 52.
        let word = (FPU_ALU_OPCODE << 28) | (52 << 22) | (1 << 8); // unit=1 func=0
        assert_eq!(
            FpuAluInstr::decode(word),
            Err(FpuInstrError::BadRegister(52))
        );
    }

    #[test]
    fn display_shows_vector_ranges() {
        let i = FpuAluInstr::vector_scalar(FpOp::Mul, r(16), r(0), r(32), 4).unwrap();
        assert_eq!(i.to_string(), "fmul R16..R19, R0..R3, R32");
        let s = FpuAluInstr::scalar(FpOp::Recip, r(5), r(6), r(0));
        assert_eq!(s.to_string(), "frecip R5, R6");
    }
}
