//! Per-instruction issue-cost and hazard metadata — the single source of
//! truth shared by the cycle simulator (`mt-sim`) and the static
//! cycle/throughput analyzer (`mt-mca`).
//!
//! The timing model of the paper is statically knowable: a fixed 3-cycle
//! FPU latency, one load/store port (stores hold it two cycles, §2.4),
//! one integer load delay slot, a one-cycle taken-branch bubble, and the
//! scoreboard/IR interlocks of §2.3. This module captures that model as
//! data:
//!
//! * [`IssueTiming`] — the machine's cycle-cost parameters (previously
//!   private to `mt-sim`);
//! * [`InstrCost`] — which interlocks each instruction's execute stage
//!   checks, in guard order, and which resources it occupies on success.
//!
//! The simulator's execute stage and the analyzer's abstract timing
//! machine both consume these tables, so a change to the model (say a
//! different store port occupancy) propagates to both and they cannot
//! drift. The differential tests in `tests/static_timing.rs` enforce the
//! agreement bit for bit.

use mt_fparith::OP_LATENCY_CYCLES;

use crate::cpu::Instr;
use crate::reg::{FReg, IReg};

/// Cycles after the memory port latches FPU load data before an ALU
/// element issuing may read it ("data usable by an element issuing the
/// next cycle").
pub const FPU_LOAD_VISIBLE_AFTER: u64 = 1;

/// Cycle costs of instruction issue on the MultiTitan substrate.
///
/// All values are *beyond* any cache-miss penalty; the paper's kernel
/// figures (Figs. 5–8) assume warm caches, which is also the model the
/// static analyses (`mt-lint`, `mt-mca`) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueTiming {
    /// Cycles a store occupies the load/store port (§2.4: "stores take
    /// two cycles").
    pub store_port_cycles: u64,
    /// Cycles a load occupies the load/store port.
    pub load_port_cycles: u64,
    /// Extra delay-slot cycles before an integer load's destination may be
    /// used (one load delay slot beyond port occupancy).
    pub int_load_delay_cycles: u64,
    /// FPU functional-unit latency in cycles (3 on the real machine).
    pub fpu_latency: u64,
    /// Cycles a taken branch costs beyond the branch itself.
    pub branch_penalty: u64,
    /// Element-issue lanes of the FPU ALU: how many consecutive vector
    /// elements the IR may issue (and hence retire) per cycle. The real
    /// machine has one lane; design-space sweeps widen it Ara-style.
    /// Elements still issue strictly in order — a scoreboard-blocked
    /// element blocks the lanes behind it — and only the first blocked
    /// attempt of a cycle charges a scoreboard stall, so `fpu_lanes = 1`
    /// is bit-identical to the pre-parameterized machine.
    pub fpu_lanes: u64,
}

impl IssueTiming {
    /// The paper's machine: 2-cycle stores, 1-cycle loads, one integer
    /// load delay slot, latency-3 FPU, 1-cycle branch bubble.
    pub fn multititan() -> IssueTiming {
        IssueTiming {
            store_port_cycles: 2,
            load_port_cycles: 1,
            int_load_delay_cycles: 2,
            fpu_latency: OP_LATENCY_CYCLES,
            branch_penalty: 1,
            fpu_lanes: 1,
        }
    }

    /// Port occupancy of one access direction.
    pub fn port_cycles(&self, port: PortUse) -> u64 {
        match port {
            PortUse::Load => self.load_port_cycles,
            PortUse::Store => self.store_port_cycles,
        }
    }
}

impl Default for IssueTiming {
    fn default() -> IssueTiming {
        IssueTiming::multititan()
    }
}

/// Which direction an instruction drives the single load/store port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortUse {
    /// One-cycle occupancy ([`IssueTiming::load_port_cycles`]).
    Load,
    /// Two-cycle occupancy ([`IssueTiming::store_port_cycles`], §2.4).
    Store,
}

/// Static issue metadata for one instruction: the interlocks its execute
/// stage checks (in the hardware's guard order — integer load interlock,
/// then load/store port, then FPU register hazard) and the resources it
/// reserves when it executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCost {
    /// CPU registers checked against the integer load interlock before
    /// the instruction may execute (`None` slots unused). The zero
    /// register is checked like any other: an integer load targeting
    /// `r0` discards its value but still occupies the delay slot.
    pub int_guards: [Option<IReg>; 2],
    /// Load/store port use, when the instruction is a memory access.
    pub port: Option<PortUse>,
    /// Destination of an integer load — enters the load delay slot
    /// ([`IssueTiming::int_load_delay_cycles`]) when the load executes.
    pub int_load_dest: Option<IReg>,
    /// FPU register driven over the memory port: `(register, is_load)`.
    /// Checked against the scoreboard and the IR's current element before
    /// execute; a load additionally reserves the register until the data
    /// becomes visible ([`FPU_LOAD_VISIBLE_AFTER`]).
    pub fpu_mem: Option<(FReg, bool)>,
    /// Whether the instruction transfers into the FPU ALU IR (stalling
    /// "issue busy" while a previous vector still occupies it).
    pub fpu_transfer: bool,
    /// Elements the instruction will issue through the single FPU lane
    /// once transferred (the vector length; zero for non-FPU-ALU
    /// instructions).
    pub element_issues: u64,
}

impl InstrCost {
    /// The cost/hazard metadata of `instr`.
    pub fn of(instr: &Instr) -> InstrCost {
        let mut c = InstrCost {
            int_guards: [None, None],
            port: None,
            int_load_dest: None,
            fpu_mem: None,
            fpu_transfer: false,
            element_issues: 0,
        };
        match *instr {
            Instr::Alu { rs1, rs2, .. } | Instr::Branch { rs1, rs2, .. } => {
                c.int_guards = [Some(rs1), Some(rs2)];
            }
            Instr::Addi { rs1, .. } => c.int_guards = [Some(rs1), None],
            Instr::Jr { rs } => c.int_guards = [Some(rs), None],
            Instr::Lw { rd, base, .. } => {
                c.int_guards = [Some(base), None];
                c.port = Some(PortUse::Load);
                c.int_load_dest = Some(rd);
            }
            Instr::Sw { rs, base, .. } => {
                c.int_guards = [Some(base), Some(rs)];
                c.port = Some(PortUse::Store);
            }
            Instr::Fld { fr, base, .. } => {
                c.int_guards = [Some(base), None];
                c.port = Some(PortUse::Load);
                c.fpu_mem = Some((fr, true));
            }
            Instr::Fst { fr, base, .. } => {
                c.int_guards = [Some(base), None];
                c.port = Some(PortUse::Store);
                c.fpu_mem = Some((fr, false));
            }
            Instr::Falu(f) => {
                c.fpu_transfer = true;
                c.element_issues = f.vl as u64;
            }
            // Nop, Halt, Mfpsw, ClrPsw, Lui, Jump, Jal never stall.
            Instr::Nop
            | Instr::Halt
            | Instr::Mfpsw { .. }
            | Instr::ClrPsw
            | Instr::Lui { .. }
            | Instr::Jump { .. }
            | Instr::Jal { .. } => {}
        }
        c
    }

    /// The registers of [`InstrCost::int_guards`], skipping unused slots.
    pub fn int_guard_regs(&self) -> impl Iterator<Item = IReg> + '_ {
        self.int_guards.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{AluOp, BranchCond};
    use crate::fpu::FpuAluInstr;
    use mt_fparith::FpOp;

    /// The paper's machine is whatever the *default* knobs say it is —
    /// asserting against `IssueTiming::default()` (not literals) keeps
    /// this test meaningful while non-default configurations exist: a
    /// drift between `multititan()` and the defaults the rest of the
    /// stack assumes is the bug being guarded against.
    #[test]
    fn multititan_matches_default_knobs() {
        let t = IssueTiming::multititan();
        let d = IssueTiming::default();
        assert_eq!(t, d, "default config IS the paper machine");
        assert_eq!(t.store_port_cycles, d.store_port_cycles);
        assert_eq!(t.load_port_cycles, d.load_port_cycles);
        assert_eq!(t.fpu_latency, OP_LATENCY_CYCLES);
        assert_eq!(t.fpu_lanes, d.fpu_lanes, "one element lane");
        assert_eq!(t.port_cycles(PortUse::Store), d.store_port_cycles);
        assert_eq!(t.port_cycles(PortUse::Load), d.load_port_cycles);
    }

    #[test]
    fn guard_sets_follow_the_execute_stage() {
        let r = IReg::new;
        let sw = InstrCost::of(&Instr::Sw {
            rs: r(5),
            base: r(1),
            offset: 0,
        });
        assert_eq!(sw.int_guards, [Some(r(1)), Some(r(5))]);
        assert_eq!(sw.port, Some(PortUse::Store));
        assert_eq!(sw.int_load_dest, None);

        let lw = InstrCost::of(&Instr::Lw {
            rd: r(7),
            base: r(2),
            offset: 4,
        });
        assert_eq!(lw.int_load_dest, Some(r(7)));
        assert_eq!(lw.port, Some(PortUse::Load));

        let fld = InstrCost::of(&Instr::Fld {
            fr: FReg::new(3),
            base: r(2),
            offset: 8,
        });
        assert_eq!(fld.fpu_mem, Some((FReg::new(3), true)));

        let br = InstrCost::of(&Instr::Branch {
            cond: BranchCond::Lt,
            rs1: r(3),
            rs2: r(4),
            offset: -2,
        });
        assert_eq!(br.int_guard_regs().count(), 2);

        let alu = InstrCost::of(&Instr::Alu {
            op: AluOp::Add,
            rd: r(5),
            rs1: r(6),
            rs2: r(7),
        });
        assert_eq!(alu.port, None);
        assert!(!alu.fpu_transfer);
    }

    #[test]
    fn vector_instruction_reports_its_element_count() {
        let v =
            FpuAluInstr::vector(FpOp::Add, FReg::new(8), FReg::new(0), FReg::new(4), 6).unwrap();
        let c = InstrCost::of(&Instr::Falu(v));
        assert!(c.fpu_transfer);
        assert_eq!(c.element_issues, 6);
        assert_eq!(c.int_guard_regs().count(), 0);
    }
}
