//! Encoded programs and where they live in memory.

use crate::{DecodeError, Instr};

/// Default load address for program text (data conventionally lives below
/// or far above; kernels pick their own layouts).
pub const DEFAULT_TEXT_BASE: u32 = 0x1_0000;

/// An initialized data segment accompanying a program (from the
/// assembler's `.data`/`.double`/`.word` directives).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataSegment {
    /// Byte address the segment loads at.
    pub base: u32,
    /// Raw little-endian contents.
    pub bytes: Vec<u8>,
}

/// An encoded program plus its load address.
#[derive(Debug, Clone)]
pub struct Program {
    /// Encoded instruction words.
    pub words: Vec<u32>,
    /// Byte address the text is loaded at (4-byte aligned).
    pub base: u32,
    /// Initialized data segments loaded alongside the text.
    pub segments: Vec<DataSegment>,
}

impl Program {
    /// Encodes a sequence of instructions at the default text base.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error (out-of-range immediate etc.).
    pub fn assemble(instrs: &[Instr]) -> Result<Program, DecodeError> {
        Program::assemble_at(instrs, DEFAULT_TEXT_BASE)
    }

    /// Encodes a sequence of instructions at a chosen base address.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn assemble_at(instrs: &[Instr], base: u32) -> Result<Program, DecodeError> {
        assert!(base.is_multiple_of(4), "text base must be word aligned");
        let words = instrs
            .iter()
            .map(|i| i.encode())
            .collect::<Result<Vec<u32>, DecodeError>>()?;
        Ok(Program {
            words,
            base,
            segments: Vec::new(),
        })
    }

    /// Decodes the whole text once into a side table indexed by word: each
    /// entry pairs the encoded word with its decoding, or is `None` for a
    /// word that does not decode (the simulator reports those lazily, at
    /// fetch time, exactly as the decode-per-fetch path did). The machine
    /// consults this table on every dynamic fetch instead of re-running
    /// `Instr::decode`.
    pub fn predecode(&self) -> Vec<Option<(u32, Instr)>> {
        self.words
            .iter()
            .map(|&w| Instr::decode(w).ok().map(|i| (w, i)))
            .collect()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Disassembles the program (for traces and debugging).
    pub fn disassemble(&self) -> Vec<String> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let text = Instr::decode(w)
                    .map(|d| d.to_string())
                    .unwrap_or_else(|e| format!("<bad: {e}>"));
                format!("{:#07x}: {text}", self.base + 4 * i as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IReg;

    #[test]
    fn assemble_and_disassemble() {
        let p = Program::assemble(&[
            Instr::Addi {
                rd: IReg::new(1),
                rs1: IReg::ZERO,
                imm: 42,
            },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.len(), 2);
        let dis = p.disassemble();
        assert!(dis[0].contains("addi r1, r0, 42"));
        assert!(dis[1].contains("halt"));
    }

    #[test]
    fn assemble_reports_encoding_errors() {
        let r = Program::assemble(&[Instr::Addi {
            rd: IReg::new(1),
            rs1: IReg::ZERO,
            imm: 1 << 20,
        }]);
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_base_panics() {
        let _ = Program::assemble_at(&[Instr::Halt], 2);
    }
}
