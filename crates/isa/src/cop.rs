//! The 10-bit coprocessor instruction bus format.
//!
//! Loads and stores of FPU registers are transmitted from the CPU to the FPU
//! over a 10-bit coprocessor instruction bus: "The 10 bits supply an opcode
//! (4 bits) and source or destination register specifier (6 bits)" (§2).
//! The CPU performs the addressing; the FPU only learns which register to
//! drive onto or latch from the memory port. This module captures that
//! bus-level encoding.

use std::fmt;

use crate::reg::FReg;

/// Opcode value for an FPU register load (memory → register).
pub const COP_LOAD: u16 = 0x1;
/// Opcode value for an FPU register store (register → memory).
pub const COP_STORE: u16 = 0x2;

/// A coprocessor load/store operation as seen on the 10-bit bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopOp {
    /// Load the named FPU register from the memory port.
    Load(FReg),
    /// Store the named FPU register to the memory port.
    Store(FReg),
}

impl CopOp {
    /// Encodes to the 10-bit bus word: `opcode:4 | reg:6`.
    pub fn encode(self) -> u16 {
        match self {
            CopOp::Load(r) => (COP_LOAD << 6) | r.index() as u16,
            CopOp::Store(r) => (COP_STORE << 6) | r.index() as u16,
        }
    }

    /// Decodes a 10-bit bus word; returns `None` for unknown opcodes or
    /// out-of-range register specifiers.
    pub fn decode(word: u16) -> Option<CopOp> {
        let reg = FReg::try_new((word & 0x3F) as u8)?;
        match word >> 6 {
            COP_LOAD => Some(CopOp::Load(reg)),
            COP_STORE => Some(CopOp::Store(reg)),
            _ => None,
        }
    }

    /// The register the operation names.
    pub fn reg(self) -> FReg {
        match self {
            CopOp::Load(r) | CopOp::Store(r) => r,
        }
    }
}

impl fmt::Display for CopOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopOp::Load(r) => write!(f, "cop.load {r}"),
            CopOp::Store(r) => write!(f, "cop.store {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_register() {
        for i in 0..52 {
            let r = FReg::new(i);
            for op in [CopOp::Load(r), CopOp::Store(r)] {
                let w = op.encode();
                assert!(w < 1 << 10, "fits in 10 bits");
                assert_eq!(CopOp::decode(w), Some(op));
            }
        }
    }

    #[test]
    fn decode_rejects_bad_words() {
        assert_eq!(CopOp::decode(52), None, "reg 52 under opcode 0");
        assert_eq!(CopOp::decode((0x3 << 6) | 1), None, "unknown opcode");
        assert_eq!(CopOp::decode((COP_LOAD << 6) | 52), None, "reg 52");
    }

    #[test]
    fn display() {
        assert_eq!(CopOp::Load(FReg::new(9)).to_string(), "cop.load R9");
        assert_eq!(CopOp::Store(FReg::new(51)).to_string(), "cop.store R51");
    }
}
