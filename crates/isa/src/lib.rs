//! The MultiTitan instruction set.
//!
//! Defines the machine-level interface of the reproduction:
//!
//! * [`fpu`] — the 32-bit FPU ALU instruction format of Fig. 3 of the paper
//!   (`op | Rr | Ra | Rb | unit | func | VL−1 | SRa | SRb`), carrying the
//!   unified vector/scalar semantics: every arithmetic instruction is a
//!   vector of length 1–16 over consecutive registers;
//! * [`cop`] — the 10-bit coprocessor load/store operations transmitted to
//!   the FPU over the coprocessor instruction bus (4-bit opcode + 6-bit
//!   register specifier);
//! * [`cpu`] — the scalar CPU substrate instruction set (integer ALU,
//!   branches, loads/stores) needed to express loop overhead and drive the
//!   FPU. The paper does not specify the CPU encoding; ours is documented in
//!   [`cpu`] and exists so programs can be assembled, encoded, and decoded
//!   end to end;
//! * [`reg`] — register name types ([`FReg`] for the 52 FPU registers,
//!   [`IReg`] for the 32 CPU registers).
//!
//! # Example: the Fibonacci vector instruction of Fig. 8
//!
//! ```
//! use mt_isa::fpu::FpuAluInstr;
//! use mt_isa::reg::FReg;
//! use mt_fparith::FpOp;
//!
//! // R2 := R1 + R0, vector length 8, both sources striding.
//! let fib = FpuAluInstr::vector(FpOp::Add, FReg::new(2), FReg::new(1), FReg::new(0), 8)
//!     .unwrap();
//! let word = fib.encode();
//! assert_eq!(FpuAluInstr::decode(word).unwrap(), fib);
//! ```

pub mod cop;
pub mod cost;
pub mod cpu;
pub mod fpu;
pub mod program;
pub mod reg;

pub use cop::CopOp;
pub use cost::{InstrCost, IssueTiming};
pub use cpu::{DecodeError, Instr};
pub use fpu::FpuAluInstr;
pub use program::{DataSegment, Program, DEFAULT_TEXT_BASE};
pub use reg::{FReg, IReg, NUM_CPU_REGS, NUM_FPU_REGS};
