//! Property tests: encode∘decode is the identity on valid instructions, and
//! decode never panics on arbitrary words.

use mt_fparith::op::ALL_OPS;
use mt_isa::fpu::MAX_VECTOR_LEN;
use mt_isa::{FReg, FpuAluInstr, IReg, Instr};
use proptest::prelude::*;

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..52).prop_map(FReg::new)
}

fn arb_ireg() -> impl Strategy<Value = IReg> {
    (0u8..32).prop_map(IReg::new)
}

fn arb_fpu_alu() -> impl Strategy<Value = FpuAluInstr> {
    (
        0usize..ALL_OPS.len(),
        arb_freg(),
        arb_freg(),
        arb_freg(),
        1u8..=MAX_VECTOR_LEN,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_filter_map(
            "register run must stay in file",
            |(op, rr, ra, rb, vl, sra, srb)| {
                FpuAluInstr::new(ALL_OPS[op], rr, ra, rb, vl, sra, srb).ok()
            },
        )
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    use mt_isa::cpu::{AluOp, BranchCond};
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (arb_ireg(), arb_ireg(), arb_ireg(), 0usize..10).prop_map(|(rd, rs1, rs2, f)| {
            let ops = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Sll,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Slt,
                AluOp::Mul,
            ];
            Instr::Alu {
                op: ops[f],
                rd,
                rs1,
                rs2,
            }
        }),
        (arb_ireg(), arb_ireg(), -131072i32..=131071).prop_map(|(rd, rs1, imm)| Instr::Addi {
            rd,
            rs1,
            imm
        }),
        (arb_ireg(), 0u32..(1 << 23)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (arb_ireg(), arb_ireg(), -131072i32..=131071).prop_map(|(rd, base, offset)| Instr::Lw {
            rd,
            base,
            offset
        }),
        (arb_ireg(), arb_ireg(), -131072i32..=131071).prop_map(|(rs, base, offset)| Instr::Sw {
            rs,
            base,
            offset
        }),
        (arb_freg(), arb_ireg(), -65536i32..=65535).prop_map(|(fr, base, offset)| Instr::Fld {
            fr,
            base,
            offset
        }),
        (arb_freg(), arb_ireg(), -65536i32..=65535).prop_map(|(fr, base, offset)| Instr::Fst {
            fr,
            base,
            offset
        }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge)
            ],
            arb_ireg(),
            arb_ireg(),
            -131072i32..=131071
        )
            .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (0u32..(1 << 28)).prop_map(|target| Instr::Jump { target }),
        (0u32..(1 << 28)).prop_map(|target| Instr::Jal { target }),
        arb_ireg().prop_map(|rs| Instr::Jr { rs }),
        arb_fpu_alu().prop_map(Instr::Falu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn instr_roundtrip(i in arb_instr()) {
        let w = i.encode().expect("generated instructions are encodable");
        prop_assert_eq!(Instr::decode(w).expect("own encoding decodes"), i);
    }

    #[test]
    fn fpu_alu_roundtrip(i in arb_fpu_alu()) {
        prop_assert_eq!(FpuAluInstr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = Instr::decode(w);
        let _ = FpuAluInstr::decode(w);
    }

    #[test]
    fn element_walk_stays_in_file(i in arb_fpu_alu()) {
        for e in 0..i.vl {
            let refs = i.element(e);
            prop_assert!(refs.rr.index() < 52);
            prop_assert!(refs.ra.index() < 52);
            prop_assert!(refs.rb.index() < 52);
        }
    }

    #[test]
    fn display_is_never_empty(i in arb_instr()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
