//! The differential validation of the static analyzer.
//!
//! Tier 1 — exactness: on straight-line cache-warm programs the static
//! prediction must be **bit-identical** to the simulator's warm-rerun
//! `RunStats` and to the measured per-PC profile, across randomized
//! programs exercising every hazard class (proptest) and hand-written
//! worst cases.
//!
//! Tier 2 — loop steady states: for vectorizable kernel loops the
//! steady-state cycles-per-iteration must agree with the measured warm
//! profile (checked end-to-end in `repro-mca`; here on representative
//! kernels).

use mt_fparith::FpOp;
use mt_isa::cost::IssueTiming;
use mt_isa::cpu::{AluOp, BranchCond};
use mt_isa::{FReg, FpuAluInstr, IReg, Instr};
use mt_lint::cfg::ProgramView;
use mt_mca::{loops, straight_line, Prediction, Skip};
use mt_sim::{Machine, Program, RunStats, SimConfig};
use mt_trace::{Profiler, TraceEvent};
use proptest::prelude::*;

/// Pointer registers, preset to disjoint data regions and never written
/// by generated code. r1/r2 address the FP regions (only `fst` writes
/// them, and all FP values are zero, so no overflow can abort a vector);
/// r3/r4 address the integer regions.
const FP_BASES: [u8; 2] = [1, 2];
const INT_BASES: [u8; 2] = [3, 4];
const REGION: [(u8, i32); 4] = [(1, 0x2000), (2, 0x3000), (3, 0x4000), (4, 0x5000)];

/// Runs `prog` with the §3.2 protocol (cold pass, then warm rerun) and
/// returns the warm statistics plus the warm event stream.
fn warm_run(prog: &Program) -> (RunStats, Vec<TraceEvent>) {
    let mut m = Machine::new(SimConfig::default());
    m.load_program(prog);
    for (r, addr) in REGION {
        m.set_ireg(IReg::new(r), addr);
    }
    m.run().expect("cold run halts");
    m.reset_for_rerun();
    for (r, addr) in REGION {
        m.set_ireg(IReg::new(r), addr);
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let warm = m.run_with_sink(&mut events).expect("warm run halts");
    (warm, events)
}

/// Asserts the static prediction equals the measured warm run, counter
/// by counter and PC by PC.
fn assert_exact(prog: &Program, warm: &RunStats, events: &[TraceEvent], pred: &Prediction) {
    let ctx = || format!("program:\n{}", prog.disassemble().join("\n"));
    assert_eq!(pred.cycles, warm.cycles, "cycles; {}", ctx());
    assert_eq!(
        pred.counters.instructions,
        warm.instructions,
        "instructions; {}",
        ctx()
    );
    assert_eq!(
        pred.counters.drain_cycles,
        warm.drain_cycles,
        "drain; {}",
        ctx()
    );
    assert_eq!(pred.counters.stalls, warm.stalls, "stalls; {}", ctx());
    assert_eq!(
        pred.counters.transfers,
        warm.fpu.instructions_transferred,
        "transfers; {}",
        ctx()
    );
    assert_eq!(
        pred.counters.elements,
        warm.fpu.elements_issued,
        "elements; {}",
        ctx()
    );
    assert_eq!(pred.counters.flops, warm.fpu.flops, "flops; {}", ctx());
    assert_eq!(
        pred.counters.scoreboard_stalls,
        warm.fpu.scoreboard_stall_cycles,
        "scoreboard; {}",
        ctx()
    );
    assert_eq!(pred.counters.fpu_loads, warm.fpu.loads, "loads; {}", ctx());
    assert_eq!(
        pred.counters.fpu_stores,
        warm.fpu.stores,
        "stores; {}",
        ctx()
    );

    // Per-PC attribution must match the measured profile row for row.
    let profile = Profiler::from_events(events);
    for (&idx, p) in &pred.per_pc {
        let pc = prog.base + 4 * idx as u32;
        let row = profile.pc(pc).cloned().unwrap_or_default();
        assert_eq!(
            p.completions,
            row.completions,
            "completions @{idx}; {}",
            ctx()
        );
        assert_eq!(p.stalls, row.stalls, "stalls @{idx}; {}", ctx());
        assert_eq!(
            p.scoreboard_stalls,
            row.scoreboard_stalls,
            "scoreboard @{idx}; {}",
            ctx()
        );
        assert_eq!(p.elements, row.elements, "elements @{idx}; {}", ctx());
        assert_eq!(p.drain, row.drain, "drain @{idx}; {}", ctx());
    }
    // And nothing measured may be missing from the prediction.
    for (pc, row) in profile.rows() {
        let idx = ((pc - prog.base) / 4) as usize;
        if !pred.per_pc.contains_key(&idx) {
            assert_eq!(
                row.attributed_cycles(),
                0,
                "unpredicted row @{idx}; {}",
                ctx()
            );
        }
    }
}

fn check_program(instrs: Vec<Instr>) {
    let prog = Program::assemble(&instrs).expect("generated instructions encode");
    let (warm, events) = warm_run(&prog);
    let view = ProgramView::decode(&prog);
    let pred = straight_line(&view, IssueTiming::multititan()).expect("straight-line");
    assert_exact(&prog, &warm, &events, &pred);
}

// ---------------------------------------------------------------------
// Hand-written worst cases, one per hazard class.
// ---------------------------------------------------------------------

fn fv(op: FpOp, rr: u8, ra: u8, rb: u8, vl: u8) -> Instr {
    Instr::Falu(FpuAluInstr::vector(op, FReg::new(rr), FReg::new(ra), FReg::new(rb), vl).unwrap())
}

fn fld(fr: u8, base: u8, offset: i32) -> Instr {
    Instr::Fld {
        fr: FReg::new(fr),
        base: IReg::new(base),
        offset,
    }
}

fn fst(fr: u8, base: u8, offset: i32) -> Instr {
    Instr::Fst {
        fr: FReg::new(fr),
        base: IReg::new(base),
        offset,
    }
}

#[test]
fn ir_busy_back_to_back_vectors() {
    check_program(vec![
        fv(FpOp::Add, 16, 0, 8, 8),
        fv(FpOp::Mul, 32, 24, 24, 8), // stalls until the first vector drains the IR
        Instr::Halt,
    ]);
}

#[test]
fn fpu_reg_hazard_store_of_inflight_result() {
    check_program(vec![
        fv(FpOp::Add, 16, 0, 8, 4),
        fst(16, 1, 0), // result not ready: scoreboard hazard, then element conflicts
        Instr::Halt,
    ]);
}

#[test]
fn int_load_use_interlock() {
    check_program(vec![
        Instr::Lw {
            rd: IReg::new(5),
            base: IReg::new(3),
            offset: 0,
        },
        Instr::Alu {
            op: AluOp::Add,
            rd: IReg::new(6),
            rs1: IReg::new(5),
            rs2: IReg::new(5),
        }, // 2-cycle load-use delay
        Instr::Halt,
    ]);
}

#[test]
fn ls_port_contention_store_then_load() {
    check_program(vec![
        Instr::Sw {
            rs: IReg::new(3),
            base: IReg::new(3),
            offset: 0,
        }, // stores hold the port 2 cycles
        fld(0, 1, 0),
        fld(1, 1, 8),
        Instr::Halt,
    ]);
}

#[test]
fn drain_outlives_halt() {
    check_program(vec![
        fld(0, 1, 0),
        fv(FpOp::Mul, 36, 0, 0, 16), // 16 elements still issuing at halt
        Instr::Halt,
    ]);
}

#[test]
fn scoreboard_chain_through_vector_elements() {
    check_program(vec![
        fld(8, 1, 0),
        fv(FpOp::Add, 16, 8, 8, 8),
        fv(FpOp::Mul, 24, 16, 16, 8), // reads the first vector's results as they retire
        Instr::Halt,
    ]);
}

// ---------------------------------------------------------------------
// Randomized differential: any straight-line program drawn from the full
// hazard-relevant instruction set predicts exactly.
// ---------------------------------------------------------------------

fn gen_falu() -> BoxedStrategy<Instr> {
    (
        0usize..3,
        0u8..36,
        0u8..36,
        0u8..36,
        1u8..=16,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(op, rr, ra, rb, vl, sra, srb)| {
            let op = [FpOp::Add, FpOp::Sub, FpOp::Mul][op];
            Instr::Falu(
                FpuAluInstr::new(
                    op,
                    FReg::new(rr),
                    FReg::new(ra),
                    FReg::new(rb),
                    vl,
                    sra,
                    srb,
                )
                .expect("register runs fit by construction"),
            )
        })
        .boxed()
}

fn gen_fp_mem() -> BoxedStrategy<Instr> {
    (any::<bool>(), 0u8..52, 0usize..2, 0i32..32)
        .prop_map(|(load, fr, base, k)| {
            let base = IReg::new(FP_BASES[base]);
            let offset = 8 * k;
            if load {
                Instr::Fld {
                    fr: FReg::new(fr),
                    base,
                    offset,
                }
            } else {
                Instr::Fst {
                    fr: FReg::new(fr),
                    base,
                    offset,
                }
            }
        })
        .boxed()
}

fn gen_int() -> BoxedStrategy<Instr> {
    let alu = (0usize..4, 5u8..16, 0u8..16, 0u8..16).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
        op: [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor][op],
        rd: IReg::new(rd),
        rs1: IReg::new(rs1),
        rs2: IReg::new(rs2),
    });
    let addi = (5u8..16, 0u8..16, -64i32..64).prop_map(|(rd, rs1, imm)| Instr::Addi {
        rd: IReg::new(rd),
        rs1: IReg::new(rs1),
        imm,
    });
    let lui = (5u8..16, 0u32..1024).prop_map(|(rd, imm)| Instr::Lui {
        rd: IReg::new(rd),
        imm,
    });
    prop_oneof![alu, addi, lui].boxed()
}

fn gen_int_mem() -> BoxedStrategy<Instr> {
    (any::<bool>(), 5u8..16, 0usize..2, 0i32..32)
        .prop_map(|(load, r, base, k)| {
            let base = IReg::new(INT_BASES[base]);
            let offset = 4 * k;
            if load {
                Instr::Lw {
                    rd: IReg::new(r),
                    base,
                    offset,
                }
            } else {
                Instr::Sw {
                    rs: IReg::new(r),
                    base,
                    offset,
                }
            }
        })
        .boxed()
}

fn gen_misc() -> BoxedStrategy<Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::ClrPsw),
        (5u8..16).prop_map(|rd| Instr::Mfpsw { rd: IReg::new(rd) }),
    ]
    .boxed()
}

fn gen_instr() -> BoxedStrategy<Instr> {
    prop_oneof![
        3 => gen_falu(),
        3 => gen_fp_mem(),
        2 => gen_int(),
        2 => gen_int_mem(),
        1 => gen_misc(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn straight_line_prediction_is_bit_identical(
        body in prop::collection::vec(gen_instr(), 1..100),
    ) {
        let mut instrs = body;
        instrs.push(Instr::Halt);
        check_program(instrs);
    }
}

// ---------------------------------------------------------------------
// Loop steady states on real kernels.
// ---------------------------------------------------------------------

/// daxpy-like strip loop: the steady state must be found, be exact
/// against the simulator's per-iteration cost, and identify the binding
/// resource.
#[test]
fn vector_strip_loop_reaches_a_steady_state() {
    use mt_asm::Asm;

    let mut a = Asm::new();
    let n = IReg::new(5);
    let p = IReg::new(1);
    a.li(n, 64);
    let top = a.here();
    for i in 0..8 {
        a.fld(FReg::new(i as u8), p, 8 * i);
    }
    a.falu(FpuAluInstr::vector(FpOp::Add, FReg::new(16), FReg::new(0), FReg::new(8), 8).unwrap());
    for i in 0..8 {
        a.fst(FReg::new(16 + i as u8), p, 8 * i);
    }
    a.addi(n, n, -8);
    a.branch(BranchCond::Ne, n, IReg::ZERO, top);
    a.halt();
    let prog = a.assemble(0).expect("assembles");

    let view = ProgramView::decode(&prog);
    let found = loops(&view, IssueTiming::multititan());
    assert_eq!(found.len(), 1, "one loop: {found:#?}");
    let l = &found[0];
    let ss = l.result.as_ref().expect("body is straight-line");
    assert!(ss.cycles > 0 && ss.iterations > 0);
    // 17 instructions per iteration plus interlocks: CPI must exceed the
    // issue floor and the machine must name a bottleneck.
    assert!(ss.cycles_per_iteration() >= 17.0, "{ss:#?}");
    assert!(!ss.bottleneck.is_empty());
}

/// A loop whose body branches internally is reported, but with
/// `Skip::NotStraightLine` — never a bogus number.
#[test]
fn data_dependent_body_is_skipped_not_guessed() {
    use mt_asm::Asm;

    let mut a = Asm::new();
    let n = IReg::new(5);
    let t = IReg::new(6);
    a.li(n, 16);
    let top = a.here();
    let skip = a.label();
    a.branch(BranchCond::Ge, t, IReg::ZERO, skip);
    a.addi(t, t, 1);
    a.bind(skip);
    a.addi(n, n, -1);
    a.branch(BranchCond::Ne, n, IReg::ZERO, top);
    a.halt();
    let prog = a.assemble(0).expect("assembles");

    let view = ProgramView::decode(&prog);
    let found = loops(&view, IssueTiming::multititan());
    assert_eq!(found.len(), 1);
    assert!(
        matches!(found[0].result, Err(Skip::NotStraightLine(_))),
        "{:#?}",
        found[0].result
    );
}

/// The straight-line analyzer refuses control flow instead of guessing.
#[test]
fn straight_line_refuses_branches() {
    let mut a = mt_asm::Asm::new();
    let l = a.label();
    a.nop();
    a.bind(l);
    a.halt();
    let prog = a.assemble(0).unwrap();
    let view = ProgramView::decode(&prog);
    assert!(straight_line(&view, IssueTiming::multititan()).is_ok());

    let mut a = mt_asm::Asm::new();
    let top = a.here();
    a.j(top);
    a.halt();
    let prog = a.assemble(0).unwrap();
    let view = ProgramView::decode(&prog);
    assert!(matches!(
        straight_line(&view, IssueTiming::multititan()),
        Err(Skip::ControlFlow(0))
    ));
}
