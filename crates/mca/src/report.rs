//! Human-readable rendering of the static analysis, in the style of the
//! measured hot-spot profile so the two can be read side by side.

use std::fmt::Write;

use mt_lint::cfg::ProgramView;
use mt_trace::{Profiler, SourceResolver, StallCause};

use crate::analysis::{LoopAnalysis, Prediction};

/// Renders the exact straight-line prediction: totals, stall breakdown,
/// and a per-instruction attribution table with source locations from
/// `resolve` (disassembly fallback).
pub fn straight_line_report(
    view: &ProgramView,
    p: &Prediction,
    resolve: SourceResolver<'_>,
) -> String {
    let mut out = String::new();
    let c = &p.counters;
    let _ = writeln!(
        out,
        "static timing (exact, cache-warm): {} cycles, {} instructions, {} stall, {} drain",
        p.cycles,
        c.instructions,
        c.stalls.total(),
        c.drain_cycles
    );
    let _ = writeln!(
        out,
        "{} transfers, {} elements, {} flops, {} scoreboard-stall cycles (concurrent)\n",
        c.transfers, c.elements, c.flops, c.scoreboard_stalls
    );
    let _ = writeln!(
        out,
        "{:>8} {:>6}  {:>6} {:>6} {:>6}  {:<18} source",
        "cycles", "%", "compl", "stall", "elems", "hottest-stall"
    );
    let mut rows: Vec<_> = p.per_pc.iter().collect();
    rows.sort_by_key(|&(idx, row)| (std::cmp::Reverse(row.attributed_cycles()), *idx));
    for (&idx, row) in rows {
        let cycles = row.attributed_cycles();
        let pct = if p.cycles == 0 {
            0.0
        } else {
            100.0 * cycles as f64 / p.cycles as f64
        };
        let cause = StallCause::ALL
            .iter()
            .map(|&c| (c, row.stalls[c.index()]))
            .max_by_key(|&(_, n)| n)
            .filter(|&(_, n)| n > 0)
            .map(|(c, n)| format!("{} ({n})", c.name()))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{cycles:>8} {pct:>5.1}%  {:>6} {:>6} {:>6}  {cause:<18} {}",
            row.completions,
            row.stall_cycles(),
            row.elements,
            source_of(view, idx, resolve),
        );
    }
    out
}

/// Renders one loop's steady-state analysis: the headline, the binding
/// bottleneck, and the per-instruction share of the iteration.
pub fn loop_report(view: &ProgramView, l: &LoopAnalysis, resolve: SourceResolver<'_>) -> String {
    let mut out = String::new();
    let header_pc = view.pc(l.header);
    match &l.result {
        Err(skip) => {
            let _ = writeln!(
                out,
                "loop at {header_pc:#07x} ({}): not statically timed — {skip}",
                source_loc(view, l.header, resolve)
            );
        }
        Ok(ss) => {
            let _ = writeln!(
                out,
                "loop at {header_pc:#07x} ({}): steady state {:.2} cycles/iteration \
                 ({} cycles / {} iterations, after {} warm-up), bound by {}",
                source_loc(view, l.header, resolve),
                ss.cycles_per_iteration(),
                ss.cycles,
                ss.iterations,
                ss.warmup_iterations,
                ss.bottleneck,
            );
            let per_iter = |v: u64| v as f64 / ss.iterations as f64;
            let c = &ss.counters;
            let _ = writeln!(
                out,
                "  per iteration: {:.2} instructions, {:.2} stall ({}), {:.2} elements, \
                 {:.2} scoreboard-stall (concurrent)",
                per_iter(c.instructions),
                per_iter(c.stalls.total()),
                stall_summary(c),
                per_iter(c.elements),
                per_iter(c.scoreboard_stalls),
            );
            let mut rows: Vec<_> = ss.per_pc.iter().collect();
            rows.sort_by_key(|&(idx, row)| (std::cmp::Reverse(row.attributed_cycles()), *idx));
            for (&idx, row) in rows {
                let cycles = row.attributed_cycles();
                if cycles == 0 {
                    continue;
                }
                let share = 100.0 * cycles as f64 / ss.cycles as f64;
                let _ = writeln!(
                    out,
                    "  {share:>5.1}%  {:>5.2} cyc/iter  {}",
                    cycles as f64 / ss.iterations as f64,
                    source_of(view, idx, resolve),
                );
            }
        }
    }
    out
}

/// A predicted-vs-measured table: each analyzed loop's steady-state CPI
/// against the measured warm profile (`iterations` taken from latch
/// completions, measured cycles from the body's attributed cycles).
pub fn compare_report(
    view: &ProgramView,
    loops: &[LoopAnalysis],
    profiler: &Profiler,
    resolve: SourceResolver<'_>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>10} {:>7}  {:<10} loop",
        "pred-cpi", "meas-cpi", "iters", "err", "bound-by"
    );
    for l in loops {
        let loc = source_loc(view, l.header, resolve);
        match (&l.result, measured_loop(view, l, profiler)) {
            (Ok(ss), Some((meas_cpi, iters))) => {
                let pred = ss.cycles_per_iteration();
                let err = 100.0 * (pred - meas_cpi) / meas_cpi;
                let _ = writeln!(
                    out,
                    "{pred:>9.2} {meas_cpi:>10.2} {iters:>10} {err:>+6.1}%  {:<10} {loc}",
                    ss.bottleneck
                );
            }
            (Ok(ss), None) => {
                let _ = writeln!(
                    out,
                    "{:>9.2} {:>10} {:>10} {:>7}  {:<10} {loc}",
                    ss.cycles_per_iteration(),
                    "-",
                    "-",
                    "-",
                    ss.bottleneck
                );
            }
            (Err(skip), _) => {
                let _ = writeln!(
                    out,
                    "{:>9} {:>10} {:>10} {:>7}  {:<10} {loc} — {skip}",
                    "-", "-", "-", "-", "-"
                );
            }
        }
    }
    out
}

/// Measured warm cycles-per-iteration of an analyzed loop, on the same
/// terms as the static model: iterations from the latch instruction's
/// completions, cycles as the sum of attributed cycles over the body
/// PCs **minus the cache-penalty stalls** (dcache-miss and fetch). The
/// static machine is the cache-warm machine, so memory-system stalls a
/// warm pass still takes — working sets larger than the 64 KB data
/// cache — are outside its model by construction; [`measured_loop_raw`]
/// keeps them. `None` when the loop never ran in the profile.
pub fn measured_loop(
    view: &ProgramView,
    l: &LoopAnalysis,
    profiler: &Profiler,
) -> Option<(f64, u64)> {
    let (raw, iters) = measured_loop_raw(view, l, profiler)?;
    let cache_stalls: u64 = l
        .body
        .iter()
        .filter_map(|&idx| profiler.pc(view.pc(idx)))
        .map(|row| row.stalls_by(StallCause::DataMiss) + row.stalls_by(StallCause::Fetch))
        .sum();
    Some((raw - cache_stalls as f64 / iters as f64, iters))
}

/// Measured warm cycles-per-iteration with every stall included, cache
/// penalties and all.
pub fn measured_loop_raw(
    view: &ProgramView,
    l: &LoopAnalysis,
    profiler: &Profiler,
) -> Option<(f64, u64)> {
    let iters = profiler.pc(view.pc(l.latch))?.completions;
    if iters == 0 {
        return None;
    }
    let cycles: u64 = l
        .body
        .iter()
        .filter_map(|&idx| profiler.pc(view.pc(idx)))
        .map(|row| row.attributed_cycles())
        .sum();
    Some((cycles as f64 / iters as f64, iters))
}

fn stall_summary(c: &crate::machine::Counters) -> String {
    let parts: Vec<String> = [
        ("ir-busy", c.stalls.ir_busy),
        ("ls-port", c.stalls.ls_port_busy),
        ("fpu-hazard", c.stalls.fpu_reg_hazard),
        ("int-hazard", c.stalls.int_load_hazard),
        ("branch", c.stalls.branch),
    ]
    .iter()
    .filter(|&&(_, n)| n > 0)
    .map(|&(name, n)| format!("{name} {n}"))
    .collect();
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(", ")
    }
}

fn source_loc(view: &ProgramView, idx: usize, resolve: SourceResolver<'_>) -> String {
    resolve(view.pc(idx))
        .map(|(loc, _)| loc)
        .unwrap_or_else(|| format!("pc {:#07x}", view.pc(idx)))
}

fn source_of(view: &ProgramView, idx: usize, resolve: SourceResolver<'_>) -> String {
    resolve(view.pc(idx))
        .map(|(loc, text)| format!("{loc}: {text}"))
        .unwrap_or_else(|| match view.slots[idx].instr {
            Some(i) => format!("{:#07x}: {i}", view.pc(idx)),
            None => format!("{:#07x}: <undecodable>", view.pc(idx)),
        })
}
