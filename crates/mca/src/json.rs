//! `mt-mca-v1` JSON export: the static loop predictions, optionally
//! joined with measured warm profiles, rendered byte-stable (no
//! wall-clock fields) so CI can plain byte-diff the committed
//! `BENCH_mca.json`.

use mt_lint::cfg::ProgramView;
use mt_trace::{Json, Profiler};

use crate::analysis::LoopAnalysis;
use crate::report::{measured_loop, measured_loop_raw};

/// Schema identifier for the mca export.
pub const SCHEMA: &str = "mt-mca-v1";

/// One loop's prediction (and, when a profile is supplied, the measured
/// comparison) as a JSON object.
pub fn loop_json(view: &ProgramView, l: &LoopAnalysis, profile: Option<&Profiler>) -> Json {
    let mut obj = Json::obj([
        ("header_pc", Json::U64(view.pc(l.header) as u64)),
        ("latch_pc", Json::U64(view.pc(l.latch) as u64)),
        ("body_instructions", Json::U64(l.body.len() as u64)),
    ]);
    match &l.result {
        Err(skip) => {
            obj.push("analyzable", Json::Bool(false));
            obj.push("skip_reason", Json::Str(skip.to_string()));
        }
        Ok(ss) => {
            obj.push("analyzable", Json::Bool(true));
            obj.push("predicted_cpi", Json::F64(ss.cycles_per_iteration()));
            obj.push("period_cycles", Json::U64(ss.cycles));
            obj.push("period_iterations", Json::U64(ss.iterations));
            obj.push("warmup_iterations", Json::U64(ss.warmup_iterations));
            obj.push("bottleneck", Json::Str(ss.bottleneck.to_string()));
            let per_iter = |v: u64| Json::F64(v as f64 / ss.iterations as f64);
            let c = &ss.counters;
            obj.push(
                "per_iteration",
                Json::obj([
                    ("instructions", per_iter(c.instructions)),
                    ("elements", per_iter(c.elements)),
                    ("flops", per_iter(c.flops)),
                    ("stall_ir_busy", per_iter(c.stalls.ir_busy)),
                    ("stall_ls_port", per_iter(c.stalls.ls_port_busy)),
                    ("stall_fpu_hazard", per_iter(c.stalls.fpu_reg_hazard)),
                    ("stall_int_hazard", per_iter(c.stalls.int_load_hazard)),
                    ("stall_branch", per_iter(c.stalls.branch)),
                    ("scoreboard_stalls", per_iter(c.scoreboard_stalls)),
                ]),
            );
        }
    }
    if let Some(profiler) = profile {
        match (&l.result, measured_loop(view, l, profiler)) {
            (Ok(ss), Some((meas_cpi, iters))) => {
                let pred = ss.cycles_per_iteration();
                obj.push("measured_cpi", Json::F64(meas_cpi));
                if let Some((raw, _)) = measured_loop_raw(view, l, profiler) {
                    obj.push("measured_cpi_raw", Json::F64(raw));
                }
                obj.push("measured_iterations", Json::U64(iters));
                obj.push("error_pct", Json::F64(100.0 * (pred - meas_cpi) / meas_cpi));
            }
            _ => obj.push("measured_cpi", Json::Null),
        }
    }
    obj
}

/// The per-program object: every detected loop, in header order.
pub fn program_json(
    name: &str,
    view: &ProgramView,
    loops: &[LoopAnalysis],
    profile: Option<&Profiler>,
) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("loops_detected", Json::U64(loops.len() as u64)),
        (
            "loops",
            Json::Arr(loops.iter().map(|l| loop_json(view, l, profile)).collect()),
        ),
    ])
}
