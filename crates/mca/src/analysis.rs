//! Program-level analyses on top of the abstract timing machine:
//! whole-program straight-line prediction and loop steady states.

use std::collections::HashMap;

use mt_isa::cost::IssueTiming;
use mt_isa::Instr;
use mt_lint::cfg::{Blocks, ProgramView};

use crate::machine::{AbstractMachine, Counters, PcPrediction};

/// Why a program or loop could not be analyzed exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skip {
    /// A word that does not decode at this index.
    Undecodable(usize),
    /// Control flow at this index (straight-line analysis only).
    ControlFlow(usize),
    /// Execution runs off the end of the text without `halt`.
    NoHalt,
    /// A loop-body block has branching control flow inside the loop
    /// (data-dependent path), so no single steady-state path exists.
    NotStraightLine(usize),
    /// The loop body did not reach a periodic steady state within the
    /// iteration budget (never observed for bounded-horizon resources;
    /// a safety net).
    NoConvergence,
}

impl std::fmt::Display for Skip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skip::Undecodable(i) => write!(f, "undecodable word at instruction #{i}"),
            Skip::ControlFlow(i) => write!(f, "control flow at instruction #{i}"),
            Skip::NoHalt => write!(f, "execution runs past the end of the text"),
            Skip::NotStraightLine(i) => {
                write!(f, "data-dependent control flow inside the loop at #{i}")
            }
            Skip::NoConvergence => write!(f, "no periodic steady state found"),
        }
    }
}

/// Exact prediction for a straight-line program (or program prefix).
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Total predicted cycles, including the post-halt drain.
    pub cycles: u64,
    /// Aggregate predicted counters.
    pub counters: Counters,
    /// Per-instruction-index attribution.
    pub per_pc: std::collections::BTreeMap<usize, PcPrediction>,
}

/// Exact static prediction of a straight-line cache-warm run from index
/// 0 to `halt`. Errors with [`Skip::ControlFlow`] on any branch or jump:
/// this is the bit-identical tier — control flow belongs to the loop
/// analysis.
pub fn straight_line(view: &ProgramView, timing: IssueTiming) -> Result<Prediction, Skip> {
    let mut m = AbstractMachine::new(timing);
    let mut idx = 0;
    loop {
        let Some(slot) = view.slots.get(idx) else {
            return Err(Skip::NoHalt);
        };
        let Some(instr) = slot.instr else {
            return Err(Skip::Undecodable(idx));
        };
        match instr {
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => {
                return Err(Skip::ControlFlow(idx));
            }
            Instr::Halt => {
                m.exec(idx, &instr, false);
                m.drain();
                return Ok(Prediction {
                    cycles: m.cycle,
                    counters: m.counters,
                    per_pc: m.per_pc,
                });
            }
            _ => m.exec(idx, &instr, false),
        }
        idx += 1;
    }
}

/// One natural loop and, when its body is a single path, its steady
/// state.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// Instruction index of the loop header (first instruction executed
    /// each iteration).
    pub header: usize,
    /// Instruction index of the latch (the back-edge branch).
    pub latch: usize,
    /// The steady-state path, in execution order (header → latch), when
    /// the body is straight-line.
    pub body: Vec<usize>,
    /// The analysis result.
    pub result: Result<SteadyState, Skip>,
}

/// The periodic steady state of a loop body.
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// Cycles per period (a period may span several iterations when the
    /// hazard pattern alternates).
    pub cycles: u64,
    /// Iterations per period.
    pub iterations: u64,
    /// Iterations executed before the machine entered the periodic
    /// state (the pipeline warm-up).
    pub warmup_iterations: u64,
    /// Counter deltas over one period.
    pub counters: Counters,
    /// Per-instruction-index attribution over one period.
    pub per_pc: std::collections::BTreeMap<usize, PcPrediction>,
    /// The resource binding the loop: the largest per-period cycle
    /// consumer among issue slots and the stall categories.
    pub bottleneck: &'static str,
}

impl SteadyState {
    /// Steady-state cycles per iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        self.cycles as f64 / self.iterations as f64
    }
}

/// Upper bound on iterations simulated before giving up on periodicity.
/// Every resource horizon is bounded (FPU latency, port occupancy, VL),
/// so the normalized state space is small; real loops repeat within a
/// couple of iterations.
const MAX_STEADY_ITERATIONS: u64 = 256;

/// Finds every natural loop in the block partition (DFS back edges) and
/// computes its steady state where the body is a single path. Loops are
/// returned in header order.
pub fn loops(view: &ProgramView, timing: IssueTiming) -> Vec<LoopAnalysis> {
    let blocks = view.basic_blocks();
    let mut out: Vec<LoopAnalysis> = back_edges(&blocks)
        .into_iter()
        .map(|(latch, header)| analyze_loop(view, &blocks, timing, header, latch))
        .collect();
    // Several back edges can share a header (`continue`-style latches);
    // keep the outermost body (largest latch) per header.
    out.sort_by_key(|l| (l.header, std::cmp::Reverse(l.latch)));
    out.dedup_by_key(|l| l.header);
    out
}

/// DFS back edges `(from, to)` where `to` is an ancestor on the current
/// DFS stack — the loop latch→header edges of a reducible CFG.
fn back_edges(blocks: &Blocks) -> Vec<(usize, usize)> {
    let n = blocks.blocks.len();
    let mut edges = Vec::new();
    if n == 0 {
        return edges;
    }
    // Iterative DFS with an explicit on-stack marker.
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(top) = stack.last_mut() {
        let (b, next) = *top;
        let succs = &blocks.blocks[b].succs;
        if next < succs.len() {
            top.1 += 1;
            let s = succs[next];
            match state[s] {
                0 => {
                    state[s] = 1;
                    stack.push((s, 0));
                }
                1 => edges.push((b, s)),
                _ => {}
            }
        } else {
            state[b] = 2;
            stack.pop();
        }
    }
    edges
}

/// The natural loop of `latch → header`: all blocks that reach the latch
/// without passing through the header.
fn natural_loop(blocks: &Blocks, header: usize, latch: usize) -> Vec<bool> {
    let mut in_loop = vec![false; blocks.blocks.len()];
    in_loop[header] = true;
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if in_loop[b] {
            continue;
        }
        in_loop[b] = true;
        for &p in &blocks.blocks[b].preds {
            work.push(p);
        }
    }
    in_loop
}

fn analyze_loop(
    view: &ProgramView,
    blocks: &Blocks,
    timing: IssueTiming,
    header: usize,
    latch: usize,
) -> LoopAnalysis {
    let in_loop = natural_loop(blocks, header, latch);
    let header_idx = blocks.blocks[header].start;
    let latch_idx = blocks.blocks[latch].end - 1;

    // The steady-state path: follow the unique in-loop successor from the
    // header back around to the header. Any block with zero or several
    // in-loop successors means the path is data-dependent — bail.
    let mut chain = Vec::new();
    let mut b = header;
    loop {
        chain.push(b);
        let in_loop_succs: Vec<usize> = blocks.blocks[b]
            .succs
            .iter()
            .copied()
            .filter(|&s| in_loop[s])
            .collect();
        let [next] = in_loop_succs[..] else {
            return LoopAnalysis {
                header: header_idx,
                latch: latch_idx,
                body: Vec::new(),
                result: Err(Skip::NotStraightLine(blocks.blocks[b].end - 1)),
            };
        };
        if next == header {
            break;
        }
        if chain.contains(&next) {
            // An inner cycle that never returns to this header (nested
            // loop shapes): not a single path.
            return LoopAnalysis {
                header: header_idx,
                latch: latch_idx,
                body: Vec::new(),
                result: Err(Skip::NotStraightLine(blocks.blocks[next].start)),
            };
        }
        b = next;
    }

    // Flatten to instruction indices and precompute per-instruction
    // taken-ness along the path.
    let mut path: Vec<usize> = Vec::new();
    for &blk in &chain {
        path.extend(blocks.blocks[blk].indices());
    }
    if path.iter().any(|&i| view.slots[i].instr.is_none()) {
        let bad = path
            .iter()
            .copied()
            .find(|&i| view.slots[i].instr.is_none())
            .unwrap();
        return LoopAnalysis {
            header: header_idx,
            latch: latch_idx,
            body: Vec::new(),
            result: Err(Skip::Undecodable(bad)),
        };
    }
    let steps: Vec<(usize, Instr, bool)> = path
        .iter()
        .enumerate()
        .map(|(k, &idx)| {
            let instr = view.slots[idx].instr.unwrap();
            let next_idx = path.get(k + 1).copied().unwrap_or(path[0]);
            // A conditional branch is taken iff the path does not fall
            // through; jumps always redirect (the machine knows).
            let taken = next_idx != idx + 1;
            (idx, instr, taken)
        })
        .collect();

    // Iterate the body from a clean machine until the normalized state
    // repeats: the cycle/counter deltas over the period are the steady
    // state.
    let mut m = AbstractMachine::new(timing);
    type Snapshot = (
        u64,
        u64,
        Counters,
        std::collections::BTreeMap<usize, PcPrediction>,
    );
    let mut seen: HashMap<crate::machine::StateKey, Snapshot> = HashMap::new();
    for iter in 0..MAX_STEADY_ITERATIONS {
        let key = m.state_key();
        if let Some((first_iter, first_cycle, first_counters, first_per_pc)) = seen.get(&key) {
            let iterations = iter - first_iter;
            let cycles = m.cycle - first_cycle;
            let counters = delta_counters(&m.counters, first_counters);
            let per_pc = delta_per_pc(&m.per_pc, first_per_pc);
            let bottleneck = bottleneck_of(&counters);
            return LoopAnalysis {
                header: header_idx,
                latch: latch_idx,
                body: path,
                result: Ok(SteadyState {
                    cycles,
                    iterations,
                    warmup_iterations: *first_iter,
                    counters,
                    per_pc,
                    bottleneck,
                }),
            };
        }
        seen.insert(key, (iter, m.cycle, m.counters, m.per_pc.clone()));
        for (idx, instr, taken) in &steps {
            m.exec(*idx, instr, *taken);
        }
    }
    LoopAnalysis {
        header: header_idx,
        latch: latch_idx,
        body: path,
        result: Err(Skip::NoConvergence),
    }
}

fn delta_counters(now: &Counters, then: &Counters) -> Counters {
    Counters {
        instructions: now.instructions - then.instructions,
        drain_cycles: now.drain_cycles - then.drain_cycles,
        stalls: mt_sim::StallBreakdown {
            ir_busy: now.stalls.ir_busy - then.stalls.ir_busy,
            ls_port_busy: now.stalls.ls_port_busy - then.stalls.ls_port_busy,
            fpu_reg_hazard: now.stalls.fpu_reg_hazard - then.stalls.fpu_reg_hazard,
            int_load_hazard: now.stalls.int_load_hazard - then.stalls.int_load_hazard,
            fetch: now.stalls.fetch - then.stalls.fetch,
            data_miss: now.stalls.data_miss - then.stalls.data_miss,
            branch: now.stalls.branch - then.stalls.branch,
        },
        transfers: now.transfers - then.transfers,
        elements: now.elements - then.elements,
        flops: now.flops - then.flops,
        scoreboard_stalls: now.scoreboard_stalls - then.scoreboard_stalls,
        fpu_loads: now.fpu_loads - then.fpu_loads,
        fpu_stores: now.fpu_stores - then.fpu_stores,
    }
}

fn delta_per_pc(
    now: &std::collections::BTreeMap<usize, PcPrediction>,
    then: &std::collections::BTreeMap<usize, PcPrediction>,
) -> std::collections::BTreeMap<usize, PcPrediction> {
    now.iter()
        .map(|(&idx, p)| {
            let base = then.get(&idx).copied().unwrap_or_default();
            let mut stalls = [0u64; 7];
            for (i, s) in stalls.iter_mut().enumerate() {
                *s = p.stalls[i] - base.stalls[i];
            }
            (
                idx,
                PcPrediction {
                    completions: p.completions - base.completions,
                    stalls,
                    scoreboard_stalls: p.scoreboard_stalls - base.scoreboard_stalls,
                    elements: p.elements - base.elements,
                    drain: p.drain - base.drain,
                },
            )
        })
        .filter(|(_, p)| *p != PcPrediction::default())
        .collect()
}

/// The per-period cycle consumers, largest first: the binding resource.
fn bottleneck_of(c: &Counters) -> &'static str {
    let candidates: [(&'static str, u64); 6] = [
        ("issue", c.instructions),
        ("ir-busy", c.stalls.ir_busy),
        ("ls-port", c.stalls.ls_port_busy),
        ("fpu-hazard", c.stalls.fpu_reg_hazard),
        ("int-hazard", c.stalls.int_load_hazard),
        ("branch", c.stalls.branch),
    ];
    candidates
        .into_iter()
        .max_by_key(|&(_, v)| v)
        .map(|(name, _)| name)
        .unwrap()
}
