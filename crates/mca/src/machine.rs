//! The abstract timing machine: a value-free replay of the simulator's
//! per-cycle hazard logic.
//!
//! [`AbstractMachine`] advances exactly the state the warm-cache timing
//! of `mt_sim::Machine` depends on — per-register ready horizons, the
//! load/store port, the fetch redirect, and the FPU ALU instruction
//! register — using the shared [`mt_isa::cost::InstrCost`] table, and
//! charges stall cycles to instruction indices in the same categories
//! and the same order as the simulator. On straight-line cache-warm
//! code its accounting is bit-identical to `RunStats` (enforced by
//! proptest in `tests/static_timing.rs`); see the crate docs for the
//! exactness boundary.

use std::collections::BTreeMap;

use mt_isa::cost::{InstrCost, IssueTiming, FPU_LOAD_VISIBLE_AFTER};
use mt_isa::{FReg, FpuAluInstr, Instr, NUM_FPU_REGS};
use mt_sim::StallBreakdown;
use mt_trace::StallCause;

/// Aggregate predicted counters, mirroring the fields of
/// `mt_sim::RunStats` that are statically determined on warm code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// CPU instructions completed.
    pub instructions: u64,
    /// Cycles draining the FPU after `halt`.
    pub drain_cycles: u64,
    /// CPU stall cycles by cause.
    pub stalls: StallBreakdown,
    /// FPU ALU instructions transferred into the IR.
    pub transfers: u64,
    /// Vector elements issued.
    pub elements: u64,
    /// Floating-point operations issued.
    pub flops: u64,
    /// FPU-side scoreboard stall cycles (concurrent with CPU cycles; not
    /// part of the cycle identity).
    pub scoreboard_stalls: u64,
    /// FPU loads (`fld`) completed.
    pub fpu_loads: u64,
    /// FPU stores (`fst`) completed.
    pub fpu_stores: u64,
}

/// Per-instruction-index predicted attribution, mirroring the measured
/// `mt_trace::PcStats` categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcPrediction {
    /// Completions of this instruction.
    pub completions: u64,
    /// Stall cycles charged at this instruction, indexed by
    /// [`StallCause::index`].
    pub stalls: [u64; 7],
    /// Scoreboard stall cycles attributed to this (transferring)
    /// instruction.
    pub scoreboard_stalls: u64,
    /// Vector elements issued on behalf of this instruction.
    pub elements: u64,
    /// Drain cycles attributed to this instruction.
    pub drain: u64,
}

impl PcPrediction {
    /// Total CPU stall cycles charged here.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Cycles this instruction accounts for (completions + stalls +
    /// drain), the same identity as the measured profile.
    pub fn attributed_cycles(&self) -> u64 {
        self.completions + self.stall_cycles() + self.drain
    }
}

/// The FPU ALU instruction register: the transferred instruction and the
/// next element to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IrState {
    instr: FpuAluInstr,
    next_element: u8,
    /// Instruction index the transfer came from (attribution).
    src: usize,
}

/// A normalized machine state: every horizon expressed relative to the
/// current cycle. Two cycles with equal keys behave identically forever
/// given the same future instruction stream — the basis of the loop
/// steady-state detection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey {
    int_ready: [u64; 32],
    freg_ready: [u64; NUM_FPU_REGS as usize],
    ls_free: u64,
    fetch_ready: u64,
    ir: Option<(u32, u8)>,
}

/// The abstract timing machine. Create one per analyzed path; drive it
/// with [`AbstractMachine::exec`] per dynamic instruction and finish
/// with [`AbstractMachine::drain`].
#[derive(Debug, Clone)]
pub struct AbstractMachine {
    timing: IssueTiming,
    /// Current cycle (equals predicted total cycles after drain).
    pub cycle: u64,
    int_ready: [u64; 32],
    freg_ready: [u64; NUM_FPU_REGS as usize],
    ls_free_at: u64,
    fetch_ready_at: u64,
    ir: Option<IrState>,
    /// Index of the last transferred ALU instruction; scoreboard and
    /// drain cycles are attributed here, as in the simulator.
    last_ir_src: usize,
    /// Aggregate counters.
    pub counters: Counters,
    /// Per-instruction-index attribution.
    pub per_pc: BTreeMap<usize, PcPrediction>,
}

impl AbstractMachine {
    /// A machine at cycle 0 with every resource free, matching the state
    /// `Machine::reset_for_rerun` establishes for a warm run.
    pub fn new(timing: IssueTiming) -> AbstractMachine {
        AbstractMachine {
            timing,
            cycle: 0,
            int_ready: [0; 32],
            freg_ready: [0; NUM_FPU_REGS as usize],
            ls_free_at: 0,
            fetch_ready_at: 0,
            ir: None,
            last_ir_src: 0,
            counters: Counters::default(),
            per_pc: BTreeMap::new(),
        }
    }

    fn reserved(&self, r: FReg) -> bool {
        self.freg_ready[r.index() as usize] > self.cycle
    }

    /// The simulator's `current_element_conflict` under the default
    /// (paper, current-element-only) interlock.
    fn element_conflict(&self, fr: FReg, is_load: bool) -> bool {
        let Some(ir) = &self.ir else {
            return false;
        };
        let refs = ir.instr.element(ir.next_element);
        if is_load {
            refs.rr == fr || refs.ra == fr || (!ir.instr.op.is_unary() && refs.rb == fr)
        } else {
            refs.rr == fr
        }
    }

    /// The FPU's issue phase, run once per cycle after the CPU phase:
    /// up to `fpu_lanes` consecutive elements issue in order, stopping at
    /// the first scoreboard-blocked one; only the first lane's blocked
    /// attempt charges a stall — the same per-cycle schedule and
    /// accounting as the simulator's `issue_and_record`.
    fn issue_phase(&mut self) {
        for lane in 0..self.timing.fpu_lanes.max(1) {
            let Some(ir) = self.ir else { return };
            let refs = ir.instr.element(ir.next_element);
            let blocked = self.reserved(refs.ra)
                || (!ir.instr.op.is_unary() && self.reserved(refs.rb))
                || self.reserved(refs.rr);
            if blocked {
                if lane == 0 {
                    self.counters.scoreboard_stalls += 1;
                    self.per_pc.entry(ir.src).or_default().scoreboard_stalls += 1;
                }
                return;
            }
            self.freg_ready[refs.rr.index() as usize] = self.cycle + self.timing.fpu_latency;
            self.counters.elements += 1;
            if ir.instr.op.is_flop() {
                self.counters.flops += 1;
            }
            let at = self.per_pc.entry(ir.src).or_default();
            at.elements += 1;
            self.ir = if ir.next_element + 1 == ir.instr.vl {
                None
            } else {
                Some(IrState {
                    next_element: ir.next_element + 1,
                    ..ir
                })
            };
        }
    }

    fn charge(&mut self, idx: usize, cause: StallCause) {
        match cause {
            StallCause::IrBusy => self.counters.stalls.ir_busy += 1,
            StallCause::LsPortBusy => self.counters.stalls.ls_port_busy += 1,
            StallCause::FpuRegHazard => self.counters.stalls.fpu_reg_hazard += 1,
            StallCause::IntLoadHazard => self.counters.stalls.int_load_hazard += 1,
            StallCause::Fetch => self.counters.stalls.fetch += 1,
            StallCause::DataMiss => self.counters.stalls.data_miss += 1,
            StallCause::Branch => unreachable!("branch bubbles are charged in bulk"),
        }
        self.per_pc.entry(idx).or_default().stalls[cause.index()] += 1;
    }

    /// The hazard guard of the CPU's execute phase, in the hardware's
    /// order. Returns the stall cause blocking `instr` this cycle.
    fn guard(&self, cost: &InstrCost, _instr: &Instr) -> Option<StallCause> {
        if cost
            .int_guard_regs()
            .any(|r| self.int_ready[r.index() as usize] > self.cycle)
        {
            return Some(StallCause::IntLoadHazard);
        }
        if cost.port.is_some() && self.ls_free_at > self.cycle {
            return Some(StallCause::LsPortBusy);
        }
        if let Some((fr, is_load)) = cost.fpu_mem {
            if self.reserved(fr) || self.element_conflict(fr, is_load) {
                return Some(StallCause::FpuRegHazard);
            }
        }
        if cost.fpu_transfer && self.ir.is_some() {
            return Some(StallCause::IrBusy);
        }
        None
    }

    /// Executes one dynamic instruction to completion: branch-bubble
    /// wait, hazard-stall cycles (each charged at `idx`), then the
    /// instruction's resource effects — exactly the simulator's per-cycle
    /// schedule with all cache penalties at zero. `taken` tells a
    /// conditional branch which way the analyzed path goes; it is
    /// ignored for every other instruction (`jump`/`jal`/`jr` always
    /// redirect).
    pub fn exec(&mut self, idx: usize, instr: &Instr, taken: bool) {
        // Branch bubble: fetch not ready, no stall accrues (the bubble
        // was charged in bulk at the branch), the issue phase still runs.
        while self.cycle < self.fetch_ready_at {
            self.issue_phase();
            self.cycle += 1;
        }
        let cost = InstrCost::of(instr);
        while let Some(cause) = self.guard(&cost, instr) {
            self.charge(idx, cause);
            self.issue_phase();
            self.cycle += 1;
        }
        // Effects, from the shared cost table.
        if let Some(port) = cost.port {
            self.ls_free_at = self.cycle + self.timing.port_cycles(port);
        }
        if let Some(rd) = cost.int_load_dest {
            self.int_ready[rd.index() as usize] = self.cycle + self.timing.int_load_delay_cycles;
        }
        if let Some((fr, is_load)) = cost.fpu_mem {
            if is_load {
                self.freg_ready[fr.index() as usize] = self.cycle + FPU_LOAD_VISIBLE_AFTER;
                self.counters.fpu_loads += 1;
            } else {
                self.counters.fpu_stores += 1;
            }
        }
        if cost.fpu_transfer {
            let Instr::Falu(f) = instr else {
                unreachable!("fpu_transfer is set only for Falu")
            };
            self.ir = Some(IrState {
                instr: *f,
                next_element: 0,
                src: idx,
            });
            self.last_ir_src = idx;
            self.counters.transfers += 1;
        }
        let redirects = match instr {
            Instr::Branch { .. } => taken,
            Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => true,
            _ => false,
        };
        if redirects {
            self.counters.stalls.branch += self.timing.branch_penalty;
            self.per_pc.entry(idx).or_default().stalls[StallCause::Branch.index()] +=
                self.timing.branch_penalty;
            self.fetch_ready_at = self.cycle + 1 + self.timing.branch_penalty;
        }
        self.counters.instructions += 1;
        self.per_pc.entry(idx).or_default().completions += 1;
        self.issue_phase();
        self.cycle += 1;
    }

    /// Drains the FPU after `halt`: the simulator's post-halt loop, with
    /// every drain cycle attributed to the last transferred instruction.
    pub fn drain(&mut self) {
        while self.ir.is_some() || self.freg_ready.iter().any(|&t| t > self.cycle) {
            self.counters.drain_cycles += 1;
            self.per_pc.entry(self.last_ir_src).or_default().drain += 1;
            self.issue_phase();
            self.cycle += 1;
        }
    }

    /// The machine state normalized to the current cycle; equal keys at
    /// two different cycles mean identical behaviour from there on.
    pub fn state_key(&self) -> StateKey {
        StateKey {
            int_ready: self.int_ready.map(|t| t.saturating_sub(self.cycle)),
            freg_ready: self.freg_ready.map(|t| t.saturating_sub(self.cycle)),
            ls_free: self.ls_free_at.saturating_sub(self.cycle),
            fetch_ready: self.fetch_ready_at.saturating_sub(self.cycle),
            ir: self.ir.map(|ir| (ir.instr.encode(), ir.next_element)),
        }
    }
}
