//! `mt-mca` — static cycle/throughput analysis for MultiTitan programs,
//! differentially validated against the simulator.
//!
//! The simulator (`mt-sim`) tells you what a program *did*; this crate
//! tells you what it *must* do, by replaying the same per-cycle hazard
//! rules over the program text without executing it. The two views are
//! tied together by construction: both sides read the instruction
//! latency/resource metadata from [`mt_isa::cost`], and the abstract
//! machine ([`machine::AbstractMachine`]) steps the CPU/FPU phases in
//! exactly the simulator's order — CPU hazard guards (integer load-use,
//! load/store port, FPU register hazard, IR busy), instruction effects,
//! branch redirect, then one FPU element-issue phase per cycle, then the
//! post-`halt` drain.
//!
//! # What the analyzer produces
//!
//! * [`straight_line`]: for branch-free code ending in `halt`, the
//!   complete warm-cache execution profile — total cycles, the full
//!   stall breakdown, and per-instruction attribution in the same
//!   categories as the measured [`mt_trace::Profiler`].
//! * [`loops`]: natural loops from the basic-block graph
//!   (`mt_lint::cfg`), and for every loop whose body is a single
//!   straight-line path, the steady-state **cycles per iteration** and
//!   the binding bottleneck resource, found by iterating the abstract
//!   machine until its normalized state ([`machine::StateKey`]) repeats.
//!
//! # The exactness boundary
//!
//! MultiTitan timing is value-independent *except* for three channels,
//! which bound what a static analysis can promise:
//!
//! 1. **Branch direction.** A conditional branch's timing depends on
//!    which way it goes. Straight-line analysis refuses control flow
//!    ([`Skip::ControlFlow`]); loop analysis pins each in-body branch to
//!    the direction that stays on the loop path, so its prediction is
//!    exact *for iterations that take that path* and the loop-exit
//!    iteration differs only in the final redirect.
//! 2. **Addresses.** Cache hits and misses depend on the addresses a
//!    program computes. The analyzer models the **cache-warm** machine
//!    (every penalty zero), which is exactly the simulator's warm rerun
//!    for working sets that fit — the same protocol `repro-paper` uses —
//!    and a lower bound otherwise.
//! 3. **Arithmetic traps.** Overflow aborts a run early; the analyzer
//!    assumes the program completes.
//!
//! Inside that boundary the claim is not "close": straight-line
//! cache-warm predictions are **bit-identical** to `RunStats` from a
//! warm simulator rerun, enforced by a proptest differential suite and
//! golden-kernel tests in `tests/static_timing.rs`. Outside it, loop
//! steady states are validated against measured warm profiles in
//! `BENCH_mca.json` (±5% on kernel loops).

pub mod analysis;
pub mod json;
pub mod machine;
pub mod report;

pub use analysis::{loops, straight_line, LoopAnalysis, Prediction, Skip, SteadyState};
pub use machine::{AbstractMachine, Counters, PcPrediction, StateKey};
