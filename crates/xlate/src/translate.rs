//! Block translation: each basic block compiled into flat, pre-resolved
//! micro-ops.
//!
//! The translator walks the [`crate::cfg`] basic-block partition of a
//! program's text section and emits one [`Uop`] per decodable word,
//! indexed by `(pc - base) / 4`. A micro-op carries everything the
//! execute stage would otherwise re-derive per dynamic instruction:
//!
//! * the decoded instruction itself (no fetch-word decode),
//! * its [`InstrCost`] row — guard registers, load/store port use,
//!   FPU hazard registers, stall classes — (no per-attempt cost-table
//!   dispatch; a stalled instruction retries every cycle, so this is
//!   paid many times per dynamic instruction in interlocked code),
//! * the resolved control-flow target as an absolute byte PC (no
//!   word/byte address arithmetic at the taken branch).
//!
//! Undecodable words translate to `None`: they cannot execute, and an
//! executor that reaches one falls back to the interpreter, which
//! reports the identical [`BadInstruction`] fault. Nothing dynamic is
//! decided here — every hazard guard is still evaluated each cycle by
//! the executor against live machine state, so translation can never
//! change architectural results or cycle accounting.

use mt_isa::cost::InstrCost;
use mt_isa::{Instr, Program};

use crate::cfg::{Blocks, ProgramView};

/// One pre-resolved micro-op.
#[derive(Debug, Clone, Copy)]
pub struct Uop {
    /// The decoded instruction (also what a fallback interpreter step
    /// receives as its pending instruction).
    pub instr: Instr,
    /// The instruction's static issue-cost/hazard metadata, precomputed
    /// once at translation instead of per execute attempt.
    pub cost: InstrCost,
    /// Resolved control-flow target as an absolute byte PC: the taken
    /// destination for `Branch`/`Jump`/`Jal`, the fall-through `pc + 4`
    /// otherwise. (`Jr` targets are runtime register values; the field
    /// holds the fall-through and the executor ignores it.)
    pub target: u32,
}

/// A program's text section compiled to micro-ops, indexed by PC.
///
/// This is the block cache of the translated backend: `uop(pc)` is the
/// lookup that chains one translated block into the next, and the whole
/// table is dropped (the executor falls back to interpretation) when the
/// memory system reports a write into the watched text range.
#[derive(Debug, Clone)]
pub struct TranslatedProgram {
    base: u32,
    uops: Vec<Option<Uop>>,
    blocks: Blocks,
}

impl TranslatedProgram {
    /// Translates every basic block of `program`'s text section.
    pub fn translate(program: &Program) -> TranslatedProgram {
        let view = ProgramView::decode(program);
        let blocks = view.basic_blocks();
        let mut uops: Vec<Option<Uop>> = vec![None; view.slots.len()];
        // Per block, in text order; blocks partition the text, so every
        // slot is visited exactly once.
        for block in &blocks.blocks {
            for idx in block.indices() {
                let Some(instr) = view.slots[idx].instr else {
                    continue;
                };
                let pc = view.pc(idx);
                let target = match instr {
                    // Exactly the execute stage's target arithmetic:
                    // word-granular PC+1+offset, then back to bytes.
                    Instr::Branch { offset, .. } => (pc / 4)
                        .wrapping_add(1)
                        .wrapping_add(offset as u32)
                        .wrapping_mul(4),
                    Instr::Jump { target } | Instr::Jal { target } => target.wrapping_mul(4),
                    _ => pc.wrapping_add(4),
                };
                uops[idx] = Some(Uop {
                    instr,
                    cost: InstrCost::of(&instr),
                    target,
                });
            }
        }
        TranslatedProgram {
            base: program.base,
            uops,
            blocks,
        }
    }

    /// The micro-op at byte address `pc`, or `None` when `pc` is
    /// misaligned, outside the translated text, or an undecodable word
    /// — all cases the executor must hand to the interpreter.
    #[inline]
    pub fn uop(&self, pc: u32) -> Option<&Uop> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 != 0 {
            return None;
        }
        self.uops.get((off / 4) as usize)?.as_ref()
    }

    /// Base address of the translated text.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of translated slots (text words).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the text section is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The basic-block partition the translation was built from.
    pub fn blocks(&self) -> &Blocks {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_isa::cpu::BranchCond;
    use mt_isa::{IReg, DEFAULT_TEXT_BASE};

    fn translate(instrs: &[Instr]) -> TranslatedProgram {
        TranslatedProgram::translate(&Program::assemble(instrs).unwrap())
    }

    #[test]
    fn targets_are_pre_resolved_byte_pcs() {
        let base_word = DEFAULT_TEXT_BASE / 4;
        let t = translate(&[
            Instr::Nop,
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: IReg::new(0),
                rs2: IReg::new(1),
                offset: -2,
            },
            Instr::Jump {
                target: base_word + 4,
            },
            Instr::Jal { target: base_word },
            Instr::Halt,
        ]);
        assert_eq!(t.base(), DEFAULT_TEXT_BASE);
        assert_eq!(t.len(), 5);
        // nop falls through.
        assert_eq!(
            t.uop(DEFAULT_TEXT_BASE).unwrap().target,
            DEFAULT_TEXT_BASE + 4
        );
        // branch at word 1, offset -2 → word 0.
        assert_eq!(
            t.uop(DEFAULT_TEXT_BASE + 4).unwrap().target,
            DEFAULT_TEXT_BASE
        );
        // jump/jal targets are absolute words scaled to bytes.
        assert_eq!(
            t.uop(DEFAULT_TEXT_BASE + 8).unwrap().target,
            DEFAULT_TEXT_BASE + 16
        );
        assert_eq!(
            t.uop(DEFAULT_TEXT_BASE + 12).unwrap().target,
            DEFAULT_TEXT_BASE
        );
    }

    #[test]
    fn cost_matches_the_shared_table() {
        let t = translate(&[
            Instr::Lw {
                rd: IReg::new(3),
                base: IReg::new(1),
                offset: 8,
            },
            Instr::Halt,
        ]);
        let u = t.uop(DEFAULT_TEXT_BASE).unwrap();
        assert_eq!(u.cost, InstrCost::of(&u.instr));
        assert_eq!(u.cost.int_load_dest, Some(IReg::new(3)));
    }

    #[test]
    fn misaligned_out_of_range_and_undecodable_pcs_miss() {
        let raw = Program {
            base: DEFAULT_TEXT_BASE,
            words: vec![
                Instr::Nop.encode().unwrap(),
                7, // SYS with funct 7: does not decode
            ],
            segments: Vec::new(),
        };
        let t = TranslatedProgram::translate(&raw);
        assert!(t.uop(DEFAULT_TEXT_BASE).is_some());
        assert!(t.uop(DEFAULT_TEXT_BASE + 1).is_none(), "misaligned");
        assert!(t.uop(DEFAULT_TEXT_BASE + 4).is_none(), "undecodable");
        assert!(t.uop(DEFAULT_TEXT_BASE + 8).is_none(), "past text");
        assert!(t.uop(0).is_none(), "before text");
    }

    #[test]
    fn blocks_partition_survives_translation() {
        let t = translate(&[
            Instr::Nop,
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: IReg::new(0),
                rs2: IReg::new(0),
                offset: -2,
            },
            Instr::Halt,
        ]);
        assert_eq!(t.blocks().blocks.len(), 2);
        assert_eq!(t.blocks().block_of.len(), t.len());
    }
}
