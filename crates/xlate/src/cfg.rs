//! Decoded program view, control-flow successors, and the basic-block
//! partition the flow-sensitive analyses (and `mt-mca`'s loop timing)
//! are built on.

use mt_isa::{IReg, Instr, Program};

/// One text word: raw encoding plus its decoding, when valid.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// The raw instruction word.
    pub word: u32,
    /// The decoded instruction (`None` when the word does not decode).
    pub instr: Option<Instr>,
}

/// A program decoded for analysis.
#[derive(Debug, Clone)]
pub struct ProgramView {
    /// Base address of the text section.
    pub base: u32,
    /// One slot per text word.
    pub slots: Vec<Slot>,
}

impl ProgramView {
    /// Decodes every word of `program`'s text section.
    pub fn decode(program: &Program) -> ProgramView {
        ProgramView {
            base: program.base,
            slots: program
                .words
                .iter()
                .map(|&word| Slot {
                    word,
                    instr: Instr::decode(word).ok(),
                })
                .collect(),
        }
    }

    /// Absolute address of instruction `idx`.
    pub fn pc(&self, idx: usize) -> u32 {
        self.base + 4 * idx as u32
    }

    /// Return points established by `jal` call sites, when every value
    /// `r31` can ever hold is provably a `jal` return address.
    ///
    /// The proof obligation is whole-program: if **no** decoded
    /// instruction other than `jal` writes `r31` (undecodable words
    /// cannot execute — the simulator faults on them — so they never
    /// write anything), then the only values a `jr r31` can observe are
    /// the `call site + 1` addresses the `jal`s established, and its
    /// successor set is exactly those return points. Any other `r31`
    /// write anywhere (a computed return address, a spill/reload through
    /// memory would appear as `lw r31, ...`) voids the proof and this
    /// returns `None`.
    fn jal_return_points(&self) -> Option<Vec<usize>> {
        let mut returns = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(instr) = slot.instr else { continue };
            match instr {
                Instr::Jal { .. } if idx + 1 < self.slots.len() => {
                    returns.push(idx + 1);
                }
                Instr::Alu { rd, .. }
                | Instr::Addi { rd, .. }
                | Instr::Lui { rd, .. }
                | Instr::Lw { rd, .. }
                | Instr::Mfpsw { rd }
                    if rd == IReg::new(31) =>
                {
                    return None;
                }
                _ => {}
            }
        }
        Some(returns)
    }

    /// Control-flow successors of instruction `idx`, restricted to indices
    /// inside the text section.
    ///
    /// `halt` and undecodable slots end analysis. Indirect jumps are
    /// resolved as far as is provable and end analysis otherwise:
    ///
    /// * `jr r31` where `r31` is written **only** by `jal` instructions
    ///   (checked over the whole text section) flows to every `jal`
    ///   return point — an over-approximation, since a specific `jr`
    ///   dynamically returns only to the call sites that can actually
    ///   reach it, but a sound one: every dynamic successor is in the
    ///   set. See [`ProgramView::jal_return_points`].
    /// * `jr r31` in a program with any other `r31` write, and `jr` of
    ///   any other register, remain analysis-ending: the target is a
    ///   runtime value the decoder cannot bound. Analyses treat such an
    ///   instruction like `halt` — paths through it are simply not
    ///   tracked, which keeps the ordering/dataflow passes sound for the
    ///   code they do reach but blind past a computed jump.
    pub fn successors(&self, idx: usize) -> Vec<usize> {
        let Some(instr) = self.slots[idx].instr else {
            return Vec::new();
        };
        let in_range = |i: i64| -> Option<usize> {
            (0..self.slots.len() as i64)
                .contains(&i)
                .then_some(i as usize)
        };
        let mut next = Vec::new();
        match instr {
            Instr::Halt => {}
            Instr::Jr { rs } if rs == IReg::new(31) => {
                if let Some(returns) = self.jal_return_points() {
                    next.extend(returns);
                }
            }
            Instr::Jr { .. } => {}
            Instr::Jump { target } | Instr::Jal { target } => {
                next.extend(in_range(target as i64 - (self.base / 4) as i64));
            }
            Instr::Branch { offset, .. } => {
                next.extend(in_range(idx as i64 + 1));
                next.extend(in_range(idx as i64 + 1 + offset as i64));
            }
            _ => next.extend(in_range(idx as i64 + 1)),
        }
        next.dedup();
        next
    }

    /// Indices reachable from the entry (index 0), in discovery order.
    pub fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.slots.len()];
        let mut order = Vec::new();
        let mut work = Vec::new();
        if !self.slots.is_empty() {
            seen[0] = true;
            work.push(0);
        }
        while let Some(idx) = work.pop() {
            order.push(idx);
            for s in self.successors(idx) {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        order.sort_unstable();
        order
    }

    /// Whether the slot at `idx` ends a basic block: control flow, halt,
    /// or a word that does not decode (analysis-ending).
    pub fn is_terminator(&self, idx: usize) -> bool {
        matches!(
            self.slots[idx].instr,
            None | Some(
                Instr::Halt
                    | Instr::Branch { .. }
                    | Instr::Jump { .. }
                    | Instr::Jal { .. }
                    | Instr::Jr { .. }
            )
        )
    }

    /// Partitions the whole text section (reachable or not) into basic
    /// blocks: maximal runs of slots with one entry (the leader) and one
    /// exit (the last slot). Block edges follow
    /// [`ProgramView::successors`] of each block's last slot, so they
    /// inherit its `jal`/`jr` resolution and its conservatism.
    pub fn basic_blocks(&self) -> Blocks {
        let n = self.slots.len();
        if n == 0 {
            return Blocks {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        // Leaders: the entry, every successor of a terminator, and the
        // slot after a terminator (a fall-through entry even when the
        // terminator never falls through — the next block simply has no
        // edge from it then).
        let mut leader = vec![false; n];
        leader[0] = true;
        for idx in 0..n {
            if self.is_terminator(idx) {
                if idx + 1 < n {
                    leader[idx + 1] = true;
                }
                for s in self.successors(idx) {
                    leader[s] = true;
                }
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for idx in 0..n {
            block_of[idx] = blocks.len();
            let ends = idx + 1 == n || leader[idx + 1];
            if ends {
                blocks.push(BasicBlock {
                    start,
                    end: idx + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = idx + 1;
            }
        }
        // Edges: the last slot's successors, mapped to their blocks
        // (every successor of a terminator is a leader; a non-terminator
        // last slot falls through to the next leader).
        let succ_lists: Vec<Vec<usize>> = blocks
            .iter()
            .map(|b| {
                let mut succs: Vec<usize> = self
                    .successors(b.end - 1)
                    .into_iter()
                    .map(|s| block_of[s])
                    .collect();
                succs.sort_unstable();
                succs.dedup();
                succs
            })
            .collect();
        for (id, succs) in succ_lists.iter().enumerate() {
            for &s in succs {
                blocks[s].preds.push(id);
            }
            blocks[id].succs = succs.clone();
        }
        Blocks { blocks, block_of }
    }
}

/// One basic block of [`ProgramView::basic_blocks`].
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of the first slot (the leader).
    pub start: usize,
    /// One past the last slot.
    pub end: usize,
    /// Successor block ids, sorted and deduplicated.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Number of slots in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never produced by the partition, but
    /// the conventional pair to [`BasicBlock::len`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The slot indices of the block.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The basic-block partition of a program.
#[derive(Debug, Clone)]
pub struct Blocks {
    /// The blocks, in text order (block 0 is the entry).
    pub blocks: Vec<BasicBlock>,
    /// Block id of every slot.
    pub block_of: Vec<usize>,
}

impl Blocks {
    /// `reachable[id]` ⟺ block `id` is reachable from the entry block.
    pub fn reachable_blocks(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = Vec::new();
        if !self.blocks.is_empty() {
            seen[0] = true;
            work.push(0);
        }
        while let Some(id) = work.pop() {
            for &s in &self.blocks[id].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_isa::cpu::BranchCond;
    use mt_isa::IReg;

    fn assemble(instrs: &[Instr]) -> ProgramView {
        ProgramView::decode(&Program::assemble(instrs).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let v = assemble(&[Instr::Nop, Instr::Nop, Instr::Halt]);
        let blocks = v.basic_blocks();
        assert_eq!(blocks.blocks.len(), 1);
        assert_eq!(blocks.blocks[0].indices(), 0..3);
        assert!(blocks.reachable_blocks()[0]);
    }

    #[test]
    fn backward_branch_forms_a_loop_block() {
        // 0: nop            <- header/latch target
        // 1: blt r0,r1,-2   -> 0
        // 2: halt
        let v = assemble(&[
            Instr::Nop,
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: IReg::new(0),
                rs2: IReg::new(1),
                offset: -2,
            },
            Instr::Halt,
        ]);
        let blocks = v.basic_blocks();
        assert_eq!(blocks.blocks.len(), 2, "{blocks:?}");
        assert_eq!(blocks.blocks[0].indices(), 0..2);
        assert_eq!(blocks.blocks[0].succs, vec![0, 1], "loop + exit");
        assert_eq!(blocks.blocks[0].preds, vec![0]);
    }

    #[test]
    fn jal_return_points_resolve_when_r31_is_call_only() {
        // 0: jal 3 (sub)   1: nop (return point)   2: halt
        // 3: nop (sub)     4: jr r31
        let base = mt_isa::DEFAULT_TEXT_BASE / 4;
        let v = assemble(&[
            Instr::Jal { target: base + 3 },
            Instr::Nop,
            Instr::Halt,
            Instr::Nop,
            Instr::Jr { rs: IReg::new(31) },
        ]);
        assert_eq!(v.successors(0), vec![3], "call edge");
        assert_eq!(v.successors(4), vec![1], "resolved return edge");
        assert_eq!(v.reachable(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn any_other_r31_write_voids_the_return_proof() {
        let base = mt_isa::DEFAULT_TEXT_BASE / 4;
        let v = assemble(&[
            Instr::Jal { target: base + 3 },
            Instr::Nop,
            Instr::Halt,
            Instr::Addi {
                rd: IReg::new(31),
                rs1: IReg::new(0),
                imm: 8,
            },
            Instr::Jr { rs: IReg::new(31) },
        ]);
        assert_eq!(v.successors(4), Vec::<usize>::new(), "analysis-ending");
    }

    #[test]
    fn non_r31_jr_stays_analysis_ending() {
        let v = assemble(&[Instr::Jr { rs: IReg::new(5) }, Instr::Halt]);
        assert_eq!(v.successors(0), Vec::<usize>::new());
    }
}
