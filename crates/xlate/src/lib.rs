//! Basic-block translation for MultiTitan programs.
//!
//! Two layers:
//!
//! * [`cfg`] — the decoded program view, control-flow successors, and the
//!   basic-block partition. Shared by the static analyses (`mt-lint`,
//!   `mt-mca`) and by the translator below.
//! * [`translate`] — compiles each basic block into flat, pre-resolved
//!   micro-ops ([`Uop`]): the decoded instruction, its issue-cost/hazard
//!   metadata ([`mt_isa::InstrCost`] — guard registers, port use, stall
//!   classes), and the pre-computed control-flow target. The simulator's
//!   block-translated backend executes these without per-instruction
//!   decode or cost-table dispatch; the table is indexed directly by PC,
//!   which is what chains translated blocks together.
//!
//! Translation is purely static: it never changes architectural or timing
//! semantics (the executor re-checks every dynamic hazard each cycle), it
//! only removes re-derivation of static facts from the hot loop.

pub mod cfg;
pub mod translate;

pub use translate::{TranslatedProgram, Uop};
