//! Property test: arbitrary expression trees compiled through the Mahler
//! expression layer produce bit-identical results to a direct recursive
//! interpretation (IEEE operations are applied in tree order, so the
//! evaluation *schedule* the Sethi–Ullman allocator picks must not change
//! values).

use mt_fparith::FpOp;
use mt_mahler::{Mahler, VExpr};
use mt_sim::{Machine, SimConfig};
use proptest::prelude::*;

const VL: u8 = 4;
const BUF_A: u32 = 0x2000;
const BUF_B: u32 = 0x2100;
const OUT: u32 = 0x2200;

/// A reproducible recipe for an expression tree (proptest-friendly).
#[derive(Debug, Clone)]
enum Recipe {
    LoadA,
    LoadB,
    Bin(FpOp, Box<Recipe>, Box<Recipe>),
    BinConst(FpOp, Box<Recipe>, f64),
}

fn arb_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![Just(FpOp::Add), Just(FpOp::Sub), Just(FpOp::Mul)]
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![Just(Recipe::LoadA), Just(Recipe::LoadB)];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (arb_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Recipe::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            (arb_op(), inner, -4.0f64..4.0).prop_map(|(op, l, c)| Recipe::BinConst(
                op,
                Box::new(l),
                c
            )),
        ]
    })
}

fn to_vexpr(r: &Recipe, pa: mt_mahler::IVar, pb: mt_mahler::IVar) -> VExpr {
    match r {
        Recipe::LoadA => VExpr::load(pa, 0, 8),
        Recipe::LoadB => VExpr::load(pb, 0, 8),
        Recipe::Bin(op, l, rr) => to_vexpr(l, pa, pb).bin(*op, to_vexpr(rr, pa, pb)),
        Recipe::BinConst(op, l, c) => to_vexpr(l, pa, pb).bin_const(*op, *c),
    }
}

/// Direct interpretation with the simulator's own arithmetic (bit-exact
/// IEEE, so host f64 ops would match too for add/sub/mul).
fn interpret(r: &Recipe, lane: usize, a: &[f64], b: &[f64]) -> f64 {
    match r {
        Recipe::LoadA => a[lane],
        Recipe::LoadB => b[lane],
        Recipe::Bin(op, l, rr) => {
            let (x, y) = (interpret(l, lane, a, b), interpret(rr, lane, a, b));
            let (bits, _) = mt_fparith::execute(*op, x.to_bits(), y.to_bits());
            f64::from_bits(bits)
        }
        Recipe::BinConst(op, l, c) => {
            let x = interpret(l, lane, a, b);
            let (bits, _) = mt_fparith::execute(*op, x.to_bits(), c.to_bits());
            f64::from_bits(bits)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_match_interpretation(
        recipe in arb_recipe(),
        a in prop::collection::vec(-8.0f64..8.0, VL as usize),
        b in prop::collection::vec(-8.0f64..8.0, VL as usize),
    ) {
        let mut m = Mahler::new();
        let dst = m.vector(VL).unwrap();
        let pa = m.ivar().unwrap();
        let pb = m.ivar().unwrap();
        let po = m.ivar().unwrap();
        m.set_i(pa, BUF_A as i32);
        m.set_i(pb, BUF_B as i32);
        m.set_i(po, OUT as i32);
        let expr = to_vexpr(&recipe, pa, pb);
        // Deep trees can exhaust the register file — the paper's compile
        // error; that is correct behaviour, skip those cases.
        if m.assign(dst, &expr).is_err() {
            return Ok(());
        }
        m.store(dst, po, 0, 8).unwrap();
        let routine = m.finish().unwrap();

        let mut machine = Machine::new(SimConfig::default());
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        machine.mem.memory.write_f64_slice(BUF_A, &a);
        machine.mem.memory.write_f64_slice(BUF_B, &b);
        machine.run().unwrap();

        for lane in 0..VL as usize {
            let got = machine.mem.memory.read_f64(OUT + 8 * lane as u32);
            let want = interpret(&recipe, lane, &a, &b);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "lane {}: got {:e}, want {:e} for {:?}",
                lane, got, want, recipe
            );
        }
    }
}
