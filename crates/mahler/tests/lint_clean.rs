//! Every routine mini-Mahler emits must be lint-clean: zero error-severity
//! findings from the `mt-lint` static analyzer. The generator's fencing
//! discipline (fence before a conflicting load, in-order-store fast path
//! after a vector op) exists precisely to satisfy the §2.3.2 ordering rule,
//! so the provable-violation tier must never fire on its output.
//!
//! Warning- and note-tier findings are allowed: the timing-free hazard
//! tier cannot see that loop overhead drains a vector across a back edge,
//! and the harness legitimately preloads registers the dataflow pass
//! cannot see written.

use mt_fparith::FpOp;
use mt_lint::{error_count, lint_program, Severity};
use mt_mahler::{CompiledRoutine, Mahler};

fn assert_lint_clean(name: &str, routine: &CompiledRoutine) {
    let findings = lint_program(&routine.program);
    let errors: Vec<_> = findings
        .iter()
        .filter(|f| f.severity() == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "mahler routine `{name}` has {} lint error(s):\n{}",
        errors.len(),
        errors
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(error_count(&findings), 0);
}

#[test]
fn vector_add_with_loads_and_stores_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let a = m.vector(8).unwrap();
    let b = m.vector(8).unwrap();
    m.load(a, p, 0, 8).unwrap();
    m.load(b, p, 64, 8).unwrap();
    m.vop(FpOp::Add, a, a, b).unwrap();
    m.store(a, p, 128, 8).unwrap();
    let routine = m.finish().unwrap();
    assert_lint_clean("vector_add", &routine);
}

#[test]
fn scalar_division_macro_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let x = m.scalar().unwrap();
    let y = m.scalar().unwrap();
    let q = m.scalar().unwrap();
    m.load_scalar(x, p, 0).unwrap();
    m.load_scalar(y, p, 8).unwrap();
    m.sdiv(q, x, y).unwrap();
    m.store_scalar(q, p, 16).unwrap();
    let routine = m.finish().unwrap();
    assert_lint_clean("sdiv", &routine);
}

#[test]
fn vector_division_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let a = m.vector(4).unwrap();
    let b = m.vector(4).unwrap();
    let q = m.vector(4).unwrap();
    let t0 = m.vector(4).unwrap();
    let t1 = m.vector(4).unwrap();
    m.load(a, p, 0, 8).unwrap();
    m.load(b, p, 32, 8).unwrap();
    m.vdiv(q, a, b, t0, t1).unwrap();
    m.store(q, p, 64, 8).unwrap();
    let routine = m.finish().unwrap();
    assert_lint_clean("vdiv", &routine);
}

#[test]
fn vector_sum_reduction_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let v = m.vector(8).unwrap();
    let s = m.scalar().unwrap();
    m.load(v, p, 0, 8).unwrap();
    m.vsum(s, v).unwrap();
    m.store_scalar(s, p, 64).unwrap();
    let routine = m.finish().unwrap();
    assert_lint_clean("vsum", &routine);
}

#[test]
fn counted_loop_over_vectors_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    let i = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let a = m.vector(4).unwrap();
    let b = m.vector(4).unwrap();
    m.counted_loop(i, 0, 4, 1, |m| {
        m.load(a, p, 0, 8).unwrap();
        m.load(b, p, 32, 8).unwrap();
        m.vop(FpOp::Mul, a, a, b).unwrap();
        m.store(a, p, 64, 8).unwrap();
        m.iadd_imm(p, p, 96);
    });
    let routine = m.finish().unwrap();
    assert_lint_clean("counted_loop", &routine);
}

#[test]
fn mixed_scalar_vector_routine_is_lint_clean() {
    let mut m = Mahler::new();
    let p = m.ivar().unwrap();
    m.set_i(p, 0x20_0000);
    let v = m.vector(6).unwrap();
    let k = m.scalar().unwrap();
    m.load_const(k, 2.5).unwrap();
    m.load(v, p, 0, 8).unwrap();
    m.vop_scalar(FpOp::Mul, v, v, k).unwrap();
    m.store(v, p, 48, 8).unwrap();
    let routine = m.finish().unwrap();
    assert_lint_clean("mixed", &routine);
}
