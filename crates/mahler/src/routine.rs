//! The Mahler routine builder and its compilation to machine code.

use std::fmt;

use mt_asm::Asm;
use mt_fparith::FpOp;
use mt_isa::cpu::{AluOp, BranchCond};
use mt_isa::{FReg, IReg, NUM_FPU_REGS};
use mt_sim::{Machine, Program};

/// Base address of the constant pool the compiled routine expects.
pub const CONST_POOL_BASE: u32 = 0xF000;

/// Default text base for compiled routines.
pub const TEXT_BASE: u32 = 0x1_0000;

/// A vector variable: a run of consecutive FPU registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vect {
    first: FReg,
    len: u8,
}

impl Vect {
    /// First register of the run.
    pub fn first(&self) -> FReg {
        self.first
    }

    /// Element count.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Always at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A sub-vector (the paper: "any consecutive subsection of this vector
    /// can be used in a vector operation, provided that the offset and size
    /// of the subset is fixed at compile time").
    ///
    /// # Panics
    ///
    /// Panics if the subsection exceeds the variable.
    pub fn slice(&self, offset: u8, len: u8) -> Vect {
        assert!(
            offset + len <= self.len && len >= 1,
            "subsection {offset}+{len} exceeds vector of length {}",
            self.len
        );
        Vect {
            first: FReg::new(self.first.index() + offset),
            len,
        }
    }

    /// Element `i` as a scalar — unified vector/scalar addressing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn element(&self, i: u8) -> Scal {
        assert!(i < self.len);
        Scal {
            reg: FReg::new(self.first.index() + i),
        }
    }
}

/// A scalar floating-point variable (one FPU register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scal {
    reg: FReg,
}

impl Scal {
    /// The register holding the scalar.
    pub fn reg(&self) -> FReg {
        self.reg
    }
}

/// An integer variable (one CPU register) for addresses and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IVar {
    reg: IReg,
}

impl IVar {
    /// The register holding the variable.
    pub fn reg(&self) -> IReg {
        self.reg
    }
}

/// Compile-time errors: the register files are per-procedure resources and
/// exhausting them is an error, exactly as in the paper ("if the total
/// amount of space needed for the declared vectors and temporaries was too
/// large, a compile error was raised").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MahlerError {
    /// No run of FPU registers long enough remains.
    OutOfFpuRegisters {
        /// Registers requested.
        requested: u8,
        /// Registers remaining.
        available: u8,
    },
    /// No CPU register remains.
    OutOfIntRegisters,
    /// Elementwise operation on vectors of different lengths.
    LengthMismatch {
        /// Destination length.
        dst: u8,
        /// Offending source length.
        src: u8,
    },
    /// Vector length above the machine maximum of 16.
    TooLong(u8),
    /// Assembly-level failure.
    Asm(String),
}

impl fmt::Display for MahlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MahlerError::OutOfFpuRegisters {
                requested,
                available,
            } => write!(
                f,
                "out of FPU registers: requested {requested}, {available} available"
            ),
            MahlerError::OutOfIntRegisters => write!(f, "out of integer registers"),
            MahlerError::LengthMismatch { dst, src } => {
                write!(f, "vector length mismatch: destination {dst}, source {src}")
            }
            MahlerError::TooLong(l) => write!(f, "vector length {l} exceeds the maximum of 16"),
            MahlerError::Asm(m) => write!(f, "assembly: {m}"),
        }
    }
}

impl std::error::Error for MahlerError {}

/// A compiled routine: the program text plus the constant pool it expects
/// in memory.
#[derive(Debug, Clone)]
pub struct CompiledRoutine {
    /// The encoded program.
    pub program: Program,
    /// `(address, bits)` pairs of the floating-point constant pool.
    pub consts: Vec<(u32, u64)>,
}

impl CompiledRoutine {
    /// Loads the program and writes the constant pool into a machine.
    pub fn install(&self, m: &mut Machine) {
        m.load_program(&self.program);
        for &(addr, bits) in &self.consts {
            m.mem.memory.write_u64(addr, bits);
        }
    }
}

/// Registers a still-issuing vector instruction may touch, as a bitmask
/// over the 52 FPU registers.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// First destination register and length, for the in-order-store fast
    /// path.
    dst_first: u8,
    dst_len: u8,
    /// Destination registers (a store may not read them, a load may not
    /// write them, before the vector finishes issuing).
    dst_mask: u64,
    /// Destinations plus source registers (a load may not clobber a source
    /// a yet-unissued element will read).
    full_mask: u64,
}

/// The routine builder.
#[derive(Debug)]
pub struct Mahler {
    asm: Asm,
    next_freg: u8,
    next_ireg: u8,
    consts: Vec<(u32, u64)>,
    /// Scratch registers for `fdiv`, allocated lazily.
    div_scratch: Option<(FReg, FReg)>,
    const_base_reg: Option<IReg>,
    /// §2.3.2 bookkeeping: the compiler must not let a load/store slip past
    /// unissued elements of a vector instruction it depends on.
    pending: Option<Pending>,
    /// Sink register for drain operations, allocated lazily.
    sink: Option<FReg>,
    /// Temporary for compares/conversions, allocated lazily.
    cmp_tmp: Option<FReg>,
    /// Whether r24 has been pointed at the scratch area yet.
    scratch_init: bool,
}

impl Default for Mahler {
    fn default() -> Mahler {
        Mahler::new()
    }
}

impl Mahler {
    /// Creates an empty routine.
    pub fn new() -> Mahler {
        Mahler {
            asm: Asm::new(),
            next_freg: 0,
            // r0 is the zero register; r25..r31 reserved for the compiler
            // (constant-pool base, loop limits, link register).
            next_ireg: 1,
            consts: Vec::new(),
            div_scratch: None,
            const_base_reg: None,
            pending: None,
            sink: None,
            cmp_tmp: None,
            scratch_init: false,
        }
    }

    fn range_mask(first: u8, len: u8) -> u64 {
        (((1u128 << len) - 1) << first) as u64
    }

    /// Records a just-emitted vector instruction's register footprint so a
    /// following load/store can be fenced (§2.3.2: "the compiler must break
    /// the vector … so that the normal scalar interlocks are effective").
    fn note_vector(&mut self, dst: Vect, srcs: &[Vect]) {
        if dst.len < 2 {
            // The hardware interlocks loads/stores against the current
            // element, which covers scalar (length-1) operations entirely.
            return;
        }
        let dst_mask = Self::range_mask(dst.first.index(), dst.len);
        let mut full_mask = dst_mask;
        for s in srcs {
            full_mask |= Self::range_mask(s.first.index(), s.len);
        }
        self.pending = Some(Pending {
            dst_first: dst.first.index(),
            dst_len: dst.len,
            dst_mask,
            full_mask,
        });
    }

    /// Fences before a load/store touching register `regs` if a pending
    /// vector could still be issuing elements that reference them. The
    /// fence is one FPU ALU no-op: its transfer cannot complete until the
    /// ALU IR has issued every element of the pending vector.
    fn fence_for(&mut self, mask: u64) -> Result<(), MahlerError> {
        let Some(p) = self.pending else { return Ok(()) };
        if p.full_mask & mask == 0 {
            return Ok(());
        }
        let sink = match self.sink {
            Some(s) => s,
            None => {
                let s = self.alloc_fregs(1)?;
                self.sink = Some(s);
                s
            }
        };
        self.asm.fscalar(FpOp::Add, sink, sink, sink);
        self.pending = None;
        Ok(())
    }

    /// Store variant of [`Mahler::fence_for`]: a store only conflicts with
    /// pending *destinations* (reading a source register is harmless).
    fn fence_for_store(&mut self, mask: u64) -> Result<(), MahlerError> {
        match self.pending {
            Some(p) if p.dst_mask & mask != 0 => self.fence_for(u64::MAX),
            _ => Ok(()),
        }
    }

    /// Registers still unallocated in the FPU file.
    pub fn fpu_registers_left(&self) -> u8 {
        NUM_FPU_REGS - self.next_freg
    }

    /// Allocates a vector variable of `len` consecutive registers.
    ///
    /// # Errors
    ///
    /// [`MahlerError::TooLong`] above 16 elements (the machine's maximum
    /// vector length); [`MahlerError::OutOfFpuRegisters`] when the file is
    /// exhausted — the paper's compile error.
    pub fn vector(&mut self, len: u8) -> Result<Vect, MahlerError> {
        if len == 0 || len > 16 {
            return Err(MahlerError::TooLong(len));
        }
        let first = self.alloc_fregs(len)?;
        Ok(Vect { first, len })
    }

    /// Allocates a scalar variable.
    ///
    /// # Errors
    ///
    /// [`MahlerError::OutOfFpuRegisters`] when the file is exhausted.
    pub fn scalar(&mut self) -> Result<Scal, MahlerError> {
        Ok(Scal {
            reg: self.alloc_fregs(1)?,
        })
    }

    /// Allocates an integer variable.
    ///
    /// # Errors
    ///
    /// [`MahlerError::OutOfIntRegisters`] when registers run out.
    pub fn ivar(&mut self) -> Result<IVar, MahlerError> {
        if self.next_ireg >= 25 {
            return Err(MahlerError::OutOfIntRegisters);
        }
        let reg = IReg::new(self.next_ireg);
        self.next_ireg += 1;
        Ok(IVar { reg })
    }

    fn alloc_fregs(&mut self, len: u8) -> Result<FReg, MahlerError> {
        if self.next_freg + len > NUM_FPU_REGS {
            return Err(MahlerError::OutOfFpuRegisters {
                requested: len,
                available: NUM_FPU_REGS - self.next_freg,
            });
        }
        let first = FReg::new(self.next_freg);
        self.next_freg += len;
        Ok(first)
    }

    /// Sets an integer variable to a constant.
    pub fn set_i(&mut self, v: IVar, value: i32) {
        self.asm.li(v.reg, value);
    }

    /// `dst = a op b` on integer variables.
    pub fn iop(&mut self, op: AluOp, dst: IVar, a: IVar, b: IVar) {
        self.asm.alu(op, dst.reg, a.reg, b.reg);
    }

    /// `dst = a + imm` on an integer variable.
    pub fn iadd_imm(&mut self, dst: IVar, a: IVar, imm: i32) {
        self.asm.addi(dst.reg, a.reg, imm);
    }

    /// Loads a floating-point constant into a scalar (constant-pool load).
    ///
    /// # Errors
    ///
    /// Register exhaustion while fencing a pending vector.
    pub fn load_const(&mut self, dst: Scal, value: f64) -> Result<(), MahlerError> {
        self.fence_for(Self::range_mask(dst.reg.index(), 1))?;
        let base = self.const_base();
        // Reuse an existing pool slot for an identical bit pattern.
        let bits = value.to_bits();
        let offset = match self.consts.iter().position(|&(_, b)| b == bits) {
            Some(i) => i,
            None => {
                self.consts
                    .push((CONST_POOL_BASE + 8 * self.consts.len() as u32, bits));
                self.consts.len() - 1
            }
        };
        self.asm.fld(dst.reg, base, 8 * offset as i32);
        Ok(())
    }

    fn const_base(&mut self) -> IReg {
        match self.const_base_reg {
            Some(r) => r,
            None => {
                let r = IReg::new(25);
                // Materialize the pool base once, at first use.
                self.asm.li(r, CONST_POOL_BASE as i32);
                self.const_base_reg = Some(r);
                r
            }
        }
    }

    /// Loads a memory vector: `len` scalar loads with the stride folded
    /// into the offsets (Fig. 9), starting at `byte_offset(base)`.
    ///
    /// # Errors
    ///
    /// Register exhaustion while fencing a pending vector.
    pub fn load(
        &mut self,
        dst: Vect,
        base: IVar,
        byte_offset: i32,
        stride_bytes: i32,
    ) -> Result<(), MahlerError> {
        self.fence_for(Self::range_mask(dst.first.index(), dst.len))?;
        for i in 0..dst.len {
            self.asm.fld(
                FReg::new(dst.first.index() + i),
                base.reg,
                byte_offset + i as i32 * stride_bytes,
            );
        }
        Ok(())
    }

    /// Stores a memory vector (series of scalar stores).
    ///
    /// Storing exactly the destination of the immediately preceding vector
    /// operation needs no fence: element-order stores interlock with the
    /// issuing elements, the paper's sanctioned overlap pattern.
    ///
    /// # Errors
    ///
    /// Register exhaustion while fencing a pending vector.
    pub fn store(
        &mut self,
        src: Vect,
        base: IVar,
        byte_offset: i32,
        stride_bytes: i32,
    ) -> Result<(), MahlerError> {
        let in_order_of_pending = matches!(
            self.pending,
            Some(p) if p.dst_first == src.first.index() && p.dst_len == src.len
        );
        if in_order_of_pending {
            self.pending = None;
        } else {
            self.fence_for_store(Self::range_mask(src.first.index(), src.len))?;
        }
        for i in 0..src.len {
            self.asm.fst(
                FReg::new(src.first.index() + i),
                base.reg,
                byte_offset + i as i32 * stride_bytes,
            );
        }
        Ok(())
    }

    /// Loads one scalar from memory.
    ///
    /// # Errors
    ///
    /// Register exhaustion while fencing a pending vector.
    pub fn load_scalar(
        &mut self,
        dst: Scal,
        base: IVar,
        byte_offset: i32,
    ) -> Result<(), MahlerError> {
        self.fence_for(Self::range_mask(dst.reg.index(), 1))?;
        self.asm.fld(dst.reg, base.reg, byte_offset);
        Ok(())
    }

    /// Stores one scalar to memory.
    ///
    /// # Errors
    ///
    /// Register exhaustion while fencing a pending vector.
    pub fn store_scalar(
        &mut self,
        src: Scal,
        base: IVar,
        byte_offset: i32,
    ) -> Result<(), MahlerError> {
        self.fence_for_store(Self::range_mask(src.reg.index(), 1))?;
        self.asm.fst(src.reg, base.reg, byte_offset);
        Ok(())
    }

    /// Elementwise `dst = a op b` between equal-length vectors — one vector
    /// instruction.
    ///
    /// # Errors
    ///
    /// [`MahlerError::LengthMismatch`] when lengths differ.
    pub fn vop(&mut self, op: FpOp, dst: Vect, a: Vect, b: Vect) -> Result<(), MahlerError> {
        if a.len != dst.len {
            return Err(MahlerError::LengthMismatch {
                dst: dst.len,
                src: a.len,
            });
        }
        if b.len != dst.len {
            return Err(MahlerError::LengthMismatch {
                dst: dst.len,
                src: b.len,
            });
        }
        self.asm
            .fvector(op, dst.first, a.first, b.first, dst.len)
            .map_err(|e| MahlerError::Asm(e.message))?;
        self.note_vector(dst, &[a, b]);
        Ok(())
    }

    /// Elementwise `dst = a op s` between a vector and a broadcast scalar.
    ///
    /// # Errors
    ///
    /// [`MahlerError::LengthMismatch`] when lengths differ.
    pub fn vop_scalar(&mut self, op: FpOp, dst: Vect, a: Vect, s: Scal) -> Result<(), MahlerError> {
        if a.len != dst.len {
            return Err(MahlerError::LengthMismatch {
                dst: dst.len,
                src: a.len,
            });
        }
        self.asm
            .fvector_scalar(op, dst.first, a.first, s.reg, dst.len)
            .map_err(|e| MahlerError::Asm(e.message))?;
        self.note_vector(
            dst,
            &[
                a,
                Vect {
                    first: s.reg,
                    len: 1,
                },
            ],
        );
        Ok(())
    }

    /// Scalar `dst = a op b`.
    pub fn sop(&mut self, op: FpOp, dst: Scal, a: Scal, b: Scal) {
        self.asm.fscalar(op, dst.reg, a.reg, b.reg);
    }

    /// Scalar unary `dst = op a` (float, truncate, reciprocal).
    pub fn sop1(&mut self, op: FpOp, dst: Scal, a: Scal) {
        self.asm.fscalar(op, dst.reg, a.reg, FReg::new(0));
    }

    /// Scalar division via the six-operation macro (scratch registers are
    /// allocated once per routine).
    ///
    /// # Errors
    ///
    /// [`MahlerError::OutOfFpuRegisters`] if the scratch pair cannot be
    /// allocated.
    pub fn sdiv(&mut self, dst: Scal, a: Scal, b: Scal) -> Result<(), MahlerError> {
        let (t0, t1) = match self.div_scratch {
            Some(pair) => pair,
            None => {
                let t0 = self.alloc_fregs(1)?;
                let t1 = self.alloc_fregs(1)?;
                self.div_scratch = Some((t0, t1));
                (t0, t1)
            }
        };
        self.asm
            .fdiv(dst.reg, a.reg, b.reg, t0, t1)
            .map_err(|e| MahlerError::Asm(e.message))?;
        Ok(())
    }

    /// Elementwise vector division via the six-operation Newton–Raphson
    /// sequence, each step a vector instruction (`recip` is a functional
    /// unit like any other, so division vectorizes). Needs two caller-
    /// provided scratch vectors of the destination's length.
    ///
    /// # Errors
    ///
    /// Length mismatches among the operands or scratch vectors.
    pub fn vdiv(
        &mut self,
        dst: Vect,
        a: Vect,
        b: Vect,
        t0: Vect,
        t1: Vect,
    ) -> Result<(), MahlerError> {
        for v in [a, b, t0, t1] {
            if v.len != dst.len {
                return Err(MahlerError::LengthMismatch {
                    dst: dst.len,
                    src: v.len,
                });
            }
        }
        // r = recip(b): unary — Ra strides, Rb ignored.
        self.asm
            .fvector_general(
                FpOp::Recip,
                t0.first,
                b.first,
                b.first,
                dst.len,
                true,
                false,
            )
            .map_err(|e| MahlerError::Asm(e.message))?;
        self.note_vector(t0, &[b]);
        self.vop(FpOp::IterStep, t1, b, t0)?;
        self.vop(FpOp::Mul, t0, t0, t1)?;
        self.vop(FpOp::IterStep, t1, b, t0)?;
        self.vop(FpOp::Mul, t0, t0, t1)?;
        self.vop(FpOp::Mul, dst, a, t0)?;
        Ok(())
    }

    /// The §3 summation operator: "performing a vector sum to add its two
    /// halves and then doing the same thing to the resulting smaller
    /// vector, until left with one or two scalar additions." Destroys the
    /// lower half of `v`; the total lands in `dst`.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (none for valid variables).
    pub fn vsum(&mut self, dst: Scal, v: Vect) -> Result<(), MahlerError> {
        let mut len = v.len;
        let first = v.first.index();
        while len > 1 {
            let half = len / 2;
            if half >= 1 {
                if len == 2 {
                    // Final addition writes the destination directly.
                    self.asm
                        .fscalar(FpOp::Add, dst.reg, FReg::new(first), FReg::new(first + 1));
                    return Ok(());
                }
                self.asm
                    .fvector(
                        FpOp::Add,
                        FReg::new(first),
                        FReg::new(first),
                        FReg::new(first + half),
                        half,
                    )
                    .map_err(|e| MahlerError::Asm(e.message))?;
                self.note_vector(
                    Vect {
                        first: FReg::new(first),
                        len: half,
                    },
                    &[Vect {
                        first: FReg::new(first + half),
                        len: half,
                    }],
                );
            }
            if len % 2 == 1 {
                // Fold the odd element into the first lane.
                self.asm.fscalar(
                    FpOp::Add,
                    FReg::new(first),
                    FReg::new(first),
                    FReg::new(first + len - 1),
                );
            }
            len = half;
        }
        // Single-element vector: copy through the add unit with a zero from
        // the constant pool.
        let zero = self.scalar()?;
        self.load_const(zero, 0.0)?;
        self.asm.fscalar(FpOp::Add, dst.reg, v.first, zero.reg);
        Ok(())
    }

    /// A counted loop: `for (i = start; i < end; i += step) body`.
    ///
    /// The limit is rematerialized in the compiler-reserved register r26 at
    /// the bottom of every iteration, immediately before the branch, so
    /// counted loops nest safely (an inner loop is free to clobber r26).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn counted_loop(
        &mut self,
        i: IVar,
        start: i32,
        end: i32,
        step: i32,
        body: impl FnOnce(&mut Mahler),
    ) {
        assert!(step > 0, "counted_loop requires a positive step");
        let limit = IReg::new(26);
        self.asm.li(i.reg, start);
        let top = self.asm.here();
        body(self);
        // Fence a vector still pending at the back edge: the next
        // iteration's first loads were emitted without knowledge of it.
        if self.pending.is_some() {
            let _ = self.fence_for(u64::MAX);
        }
        self.asm.addi(i.reg, i.reg, step);
        self.asm.li(limit, end);
        self.asm.branch(BranchCond::Lt, i.reg, limit, top);
    }

    /// Creates an unbound label for hand-rolled control flow.
    pub fn label(&mut self) -> mt_asm::Label {
        self.asm.label()
    }

    /// Binds a label at the current position.
    pub fn bind(&mut self, l: mt_asm::Label) {
        self.asm.bind(l);
    }

    /// Creates a label bound at the current position.
    pub fn here(&mut self) -> mt_asm::Label {
        self.asm.here()
    }

    /// Unconditional jump.
    pub fn jump(&mut self, l: mt_asm::Label) {
        self.asm.j(l);
    }

    /// Integer compare-and-branch between two variables.
    pub fn ibranch(&mut self, cond: BranchCond, a: IVar, b: IVar, target: mt_asm::Label) {
        self.asm.branch(cond, a.reg, b.reg, target);
    }

    /// Branch if an integer variable is zero / non-zero etc. against the
    /// hard-wired zero register.
    pub fn ibranch_zero(&mut self, cond: BranchCond, a: IVar, target: mt_asm::Label) {
        self.asm.branch(cond, a.reg, IReg::ZERO, target);
    }

    /// Loads a 32-bit integer word.
    ///
    /// # Errors
    ///
    /// Never fails today; `Result` for symmetry with the FPU loads.
    pub fn load_int(&mut self, dst: IVar, base: IVar, byte_offset: i32) -> Result<(), MahlerError> {
        self.asm.lw(dst.reg, base.reg, byte_offset);
        Ok(())
    }

    /// Stores a 32-bit integer word.
    pub fn store_int(&mut self, src: IVar, base: IVar, byte_offset: i32) {
        self.asm.sw(src.reg, base.reg, byte_offset);
    }

    /// Explicitly fences a pending vector instruction (call before
    /// hand-rolled control flow that could reorder loads/stores around it).
    ///
    /// # Errors
    ///
    /// Register exhaustion allocating the sink register.
    pub fn fence(&mut self) -> Result<(), MahlerError> {
        self.fence_for(u64::MAX)
    }

    /// Scratch memory used by the FPU↔CPU transfer helpers.
    pub const SCRATCH_ADDR: u32 = 0xEF00;

    fn scratch_base(&mut self) -> IReg {
        // r24 is reserved for the scratch pointer; materialized on first use.
        // Re-materializing on every helper keeps the register free between
        // uses at the cost of one instruction — helpers are rare, keep it
        // persistent instead.
        if !self.scratch_init {
            self.asm.li(IReg::new(24), Self::SCRATCH_ADDR as i32);
            self.scratch_init = true;
        }
        IReg::new(24)
    }

    fn cmp_tmp(&mut self) -> Result<FReg, MahlerError> {
        match self.cmp_tmp {
            Some(t) => Ok(t),
            None => {
                let t = self.alloc_fregs(1)?;
                self.cmp_tmp = Some(t);
                Ok(t)
            }
        }
    }

    /// Floating compare-and-branch: branches to `target` when
    /// `a cond b` holds (`Lt` and `Ge` conditions only — the sign-bit test
    /// the CPU can do on `a − b` through the shared cache). Operands must
    /// not be NaN.
    ///
    /// # Errors
    ///
    /// Register exhaustion for the comparison temporary.
    ///
    /// # Panics
    ///
    /// Panics for conditions other than `Lt`/`Ge`.
    pub fn fbranch(
        &mut self,
        cond: BranchCond,
        a: Scal,
        b: Scal,
        target: mt_asm::Label,
    ) -> Result<(), MahlerError> {
        assert!(
            matches!(cond, BranchCond::Lt | BranchCond::Ge),
            "float branches support Lt/Ge only (sign test on a − b)"
        );
        self.fence()?;
        let t = self.cmp_tmp()?;
        self.asm.fscalar(FpOp::Sub, t, a.reg, b.reg);
        let rs = self.scratch_base();
        self.asm.fst(t, rs, 0);
        let rt = IReg::new(27);
        self.asm.lw(rt, rs, 4); // high word carries the sign
        self.asm.branch(cond, rt, IReg::ZERO, target);
        Ok(())
    }

    /// Moves a float through `truncate` into an integer variable
    /// (round-toward-zero), via the shared cache.
    ///
    /// # Errors
    ///
    /// Register exhaustion for the conversion temporary.
    pub fn trunc_to_ivar(&mut self, dst: IVar, src: Scal) -> Result<(), MahlerError> {
        self.fence()?;
        let t = self.cmp_tmp()?;
        self.asm.fscalar(FpOp::Truncate, t, src.reg, FReg::new(0));
        let rs = self.scratch_base();
        self.asm.fst(t, rs, 0);
        self.asm.lw(dst.reg, rs, 0); // low 32 bits of the i64
        Ok(())
    }

    /// Moves an integer variable into a float scalar via the shared cache
    /// and the `float` conversion.
    ///
    /// # Errors
    ///
    /// Register exhaustion for the conversion temporary.
    pub fn ivar_to_scal(&mut self, dst: Scal, src: IVar) -> Result<(), MahlerError> {
        self.fence()?;
        let rs = self.scratch_base();
        let rt = IReg::new(27);
        self.asm.sw(src.reg, rs, 0);
        // Sign-extend the high word.
        let sh = IReg::new(28);
        self.asm.li(sh, 31);
        self.asm.alu(AluOp::Sra, rt, src.reg, sh);
        self.asm.sw(rt, rs, 4);
        let t = self.cmp_tmp()?;
        self.asm.fld(t, rs, 0);
        self.asm.fscalar(FpOp::Float, dst.reg, t, FReg::new(0));
        Ok(())
    }

    /// Direct access to the underlying assembler for constructs the Mahler
    /// layer does not express. Loads/stores emitted this way bypass the
    /// §2.3.2 fencing bookkeeping — call [`Mahler::fence`] first when a
    /// vector operation may still be issuing.
    pub fn asm_mut(&mut self) -> &mut Asm {
        &mut self.asm
    }

    /// Appends a `halt` and assembles the routine.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (unbound labels cannot occur through this
    /// API; encoding errors can, e.g. huge offsets).
    pub fn finish(mut self) -> Result<CompiledRoutine, MahlerError> {
        // Safety-net halt, but only when execution can actually reach it —
        // a routine whose text already ends in `halt`/`jr`/`jump` (e.g. a
        // trailing subroutine) would otherwise grow an unreachable word.
        if self.asm.falls_through() {
            self.asm.halt();
        }
        let program = self
            .asm
            .assemble(TEXT_BASE)
            .map_err(|e| MahlerError::Asm(e.message))?;
        Ok(CompiledRoutine {
            program,
            consts: self.consts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_sim::SimConfig;

    fn run(r: &CompiledRoutine) -> Machine {
        let mut m = Machine::new(SimConfig::default());
        r.install(&mut m);
        m.warm_instructions(&r.program);
        m.run().expect("halts");
        m
    }

    #[test]
    fn allocation_is_consecutive_and_bounded() {
        let mut m = Mahler::new();
        let a = m.vector(8).unwrap();
        let b = m.vector(8).unwrap();
        assert_eq!(a.first().index(), 0);
        assert_eq!(b.first().index(), 8);
        assert_eq!(m.fpu_registers_left(), 36);
        // Paper: "often the 52 registers are used as six vectors of length
        // 8 and four scalars".
        for _ in 0..4 {
            m.vector(8).unwrap();
        }
        for _ in 0..4 {
            m.scalar().unwrap();
        }
        assert_eq!(m.fpu_registers_left(), 0);
        assert!(matches!(
            m.vector(8),
            Err(MahlerError::OutOfFpuRegisters {
                requested: 8,
                available: 0
            })
        ));
    }

    #[test]
    fn vector_length_limits() {
        let mut m = Mahler::new();
        assert!(matches!(m.vector(17), Err(MahlerError::TooLong(17))));
        assert!(matches!(m.vector(0), Err(MahlerError::TooLong(0))));
        assert!(m.vector(16).is_ok());
    }

    #[test]
    fn daxpy_strip_computes() {
        let mut m = Mahler::new();
        let x = m.vector(8).unwrap();
        let y = m.vector(8).unwrap();
        let a = m.scalar().unwrap();
        let xp = m.ivar().unwrap();
        let yp = m.ivar().unwrap();
        m.set_i(xp, 0x2000);
        m.set_i(yp, 0x3000);
        m.load_const(a, 3.0).unwrap();
        m.load(x, xp, 0, 8).unwrap();
        m.load(y, yp, 0, 8).unwrap();
        m.vop_scalar(FpOp::Mul, x, x, a).unwrap();
        m.vop(FpOp::Add, y, y, x).unwrap();
        m.store(y, yp, 0, 8).unwrap();
        let routine = m.finish().unwrap();

        let mut machine = Machine::new(SimConfig::default());
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
        machine.mem.memory.write_f64_slice(0x2000, &xs);
        machine.mem.memory.write_f64_slice(0x3000, &ys);
        machine.run().unwrap();
        let got = machine.mem.memory.read_f64_slice(0x3000, 8);
        let want: Vec<f64> = (0..8).map(|i| 10.0 * i as f64 + 3.0 * i as f64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn vsum_halving_reduction() {
        for len in [1u8, 2, 3, 5, 7, 8, 15, 16] {
            let mut m = Mahler::new();
            let v = m.vector(len).unwrap();
            let s = m.scalar().unwrap();
            let p = m.ivar().unwrap();
            m.set_i(p, 0x2000);
            m.load(v, p, 0, 8).unwrap();
            m.vsum(s, v).unwrap();
            m.store_scalar(s, p, 512).unwrap();
            let routine = m.finish().unwrap();

            let mut machine = Machine::new(SimConfig::default());
            routine.install(&mut machine);
            machine.warm_instructions(&routine.program);
            let data: Vec<f64> = (1..=len as i64).map(|i| i as f64).collect();
            machine.mem.memory.write_f64_slice(0x2000, &data);
            machine.run().unwrap();
            let want: f64 = data.iter().sum();
            assert_eq!(
                machine.mem.memory.read_f64(0x2200),
                want,
                "vsum of 1..={len}"
            );
        }
    }

    #[test]
    fn division_through_sdiv() {
        let mut m = Mahler::new();
        let a = m.scalar().unwrap();
        let b = m.scalar().unwrap();
        let q = m.scalar().unwrap();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        m.load_scalar(a, p, 0).unwrap();
        m.load_scalar(b, p, 8).unwrap();
        m.sdiv(q, a, b).unwrap();
        m.store_scalar(q, p, 16).unwrap();
        let routine = m.finish().unwrap();

        let mut machine = Machine::new(SimConfig::default());
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        machine.mem.memory.write_f64(0x2000, 22.5);
        machine.mem.memory.write_f64(0x2008, 4.0);
        machine.run().unwrap();
        assert_eq!(machine.mem.memory.read_f64(0x2010), 5.625);
    }

    #[test]
    fn counted_loop_iterates() {
        let mut m = Mahler::new();
        let acc = m.scalar().unwrap();
        let one = m.scalar().unwrap();
        let i = m.ivar().unwrap();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        m.load_const(one, 1.0).unwrap();
        m.load_const(acc, 0.0).unwrap();
        m.counted_loop(i, 0, 10, 1, |m| {
            m.sop(FpOp::Add, acc, acc, one);
        });
        m.store_scalar(acc, p, 0).unwrap();
        let machine = run(&m.finish().unwrap());
        assert_eq!(machine.mem.memory.read_f64(0x2000), 10.0);
    }

    #[test]
    fn subsections_and_element_addressing() {
        let mut m = Mahler::new();
        let v = m.vector(8).unwrap();
        let lo = v.slice(0, 4);
        let hi = v.slice(4, 4);
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        m.load(v, p, 0, 8).unwrap();
        // lo += hi, then write element 2 of the result (a scalar use of a
        // vector element — the unified register file at work).
        m.vop(FpOp::Add, lo, lo, hi).unwrap();
        m.store_scalar(lo.element(2), p, 256).unwrap();
        let mut machine = Machine::new(SimConfig::default());
        let routine = m.finish().unwrap();
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        machine
            .mem
            .memory
            .write_f64_slice(0x2000, &[1., 2., 3., 4., 10., 20., 30., 40.]);
        machine.run().unwrap();
        assert_eq!(machine.mem.memory.read_f64(0x2100), 33.0);
    }

    #[test]
    fn constant_pool_dedupes() {
        let mut m = Mahler::new();
        let a = m.scalar().unwrap();
        let b = m.scalar().unwrap();
        m.load_const(a, 2.5).unwrap();
        m.load_const(b, 2.5).unwrap();
        let r = m.finish().unwrap();
        assert_eq!(r.consts.len(), 1, "identical constants share a slot");
    }

    #[test]
    fn strided_memory_vectors() {
        // Stride-2 gather (every other element), per Fig. 9.
        let mut m = Mahler::new();
        let v = m.vector(4).unwrap();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        m.load(v, p, 0, 16).unwrap();
        m.store(v, p, 512, 8).unwrap();
        let routine = m.finish().unwrap();
        let mut machine = Machine::new(SimConfig::default());
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        machine
            .mem
            .memory
            .write_f64_slice(0x2000, &[0., 1., 2., 3., 4., 5., 6., 7.]);
        machine.run().unwrap();
        assert_eq!(
            machine.mem.memory.read_f64_slice(0x2200, 4),
            vec![0., 2., 4., 6.]
        );
    }

    #[test]
    fn slice_bounds_checked() {
        let mut m = Mahler::new();
        let v = m.vector(4).unwrap();
        let result = std::panic::catch_unwind(|| v.slice(2, 3));
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;
    use mt_isa::cpu::BranchCond;
    use mt_sim::SimConfig;

    fn fresh() -> (Mahler, IVar) {
        let mut m = Mahler::new();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        (m, p)
    }

    fn exec(r: &CompiledRoutine, setup: impl Fn(&mut Machine)) -> Machine {
        let mut machine = Machine::new(SimConfig::default());
        r.install(&mut machine);
        machine.warm_instructions(&r.program);
        setup(&mut machine);
        machine.run().expect("halts");
        machine
    }

    #[test]
    fn fbranch_lt_selects_minimum() {
        let (mut m, p) = fresh();
        let a = m.scalar().unwrap();
        let b = m.scalar().unwrap();
        m.load_scalar(a, p, 0).unwrap();
        m.load_scalar(b, p, 8).unwrap();
        let a_less = m.label();
        let done = m.label();
        m.fbranch(BranchCond::Lt, a, b, a_less).unwrap();
        m.store_scalar(b, p, 16).unwrap();
        m.jump(done);
        m.bind(a_less);
        m.store_scalar(a, p, 16).unwrap();
        m.bind(done);
        let r = m.finish().unwrap();

        let machine = exec(&r, |mm| {
            mm.mem.memory.write_f64(0x2000, 3.5);
            mm.mem.memory.write_f64(0x2008, -1.25);
        });
        assert_eq!(machine.mem.memory.read_f64(0x2010), -1.25);

        let machine = exec(&r, |mm| {
            mm.mem.memory.write_f64(0x2000, -9.0);
            mm.mem.memory.write_f64(0x2008, 4.0);
        });
        assert_eq!(machine.mem.memory.read_f64(0x2010), -9.0);
    }

    #[test]
    fn trunc_and_float_roundtrip_through_ivars() {
        let (mut m, p) = fresh();
        let x = m.scalar().unwrap();
        let y = m.scalar().unwrap();
        let i = m.ivar().unwrap();
        m.load_scalar(x, p, 0).unwrap();
        m.trunc_to_ivar(i, x).unwrap();
        m.iadd_imm(i, i, 100);
        m.ivar_to_scal(y, i).unwrap();
        m.store_scalar(y, p, 8).unwrap();
        let r = m.finish().unwrap();
        let machine = exec(&r, |mm| {
            mm.mem.memory.write_f64(0x2000, -7.9);
        });
        // trunc(−7.9) = −7; −7 + 100 = 93.
        assert_eq!(machine.mem.memory.read_f64(0x2008), 93.0);
    }

    #[test]
    fn hand_rolled_loop_with_labels() {
        let (mut m, p) = fresh();
        let acc = m.scalar().unwrap();
        let one = m.scalar().unwrap();
        let i = m.ivar().unwrap();
        let lim = m.ivar().unwrap();
        m.load_const(acc, 0.0).unwrap();
        m.load_const(one, 1.0).unwrap();
        m.set_i(i, 0);
        m.set_i(lim, 7);
        let top = m.here();
        m.sop(FpOp::Add, acc, acc, one);
        m.iadd_imm(i, i, 1);
        m.ibranch(BranchCond::Lt, i, lim, top);
        m.store_scalar(acc, p, 0).unwrap();
        let r = m.finish().unwrap();
        let machine = exec(&r, |_| {});
        assert_eq!(machine.mem.memory.read_f64(0x2000), 7.0);
    }

    #[test]
    fn load_store_int() {
        let (mut m, p) = fresh();
        let v = m.ivar().unwrap();
        m.load_int(v, p, 0).unwrap();
        m.iadd_imm(v, v, 5);
        m.store_int(v, p, 4);
        let r = m.finish().unwrap();
        let machine = exec(&r, |mm| mm.mem.memory.write_u32(0x2000, 37));
        assert_eq!(machine.mem.memory.read_u32(0x2004), 42);
    }
}
