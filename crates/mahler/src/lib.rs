//! Mini-Mahler: the vector-extended intermediate language of §3.
//!
//! The paper's benchmarks were recoded in an extension of the Mahler
//! intermediate language with "a primitive vector capability that
//! corresponds fairly closely to the machine": vector variables of fixed
//! compile-time length, memory vectors with compile-time stride,
//! elementwise operations between equal-length vectors or vector and
//! scalar, a summation operator that repeatedly adds a vector's two halves,
//! and per-procedure register allocation that raises a compile error when
//! the declared vectors don't fit the register file.
//!
//! This crate reproduces that layer: a [`Mahler`] routine builder allocates
//! vector/scalar/integer variables, emits vector and scalar operations,
//! loads/stores memory vectors (as series of scalar loads with the stride
//! folded into the offset, Fig. 9), reduces with [`Mahler::vsum`], and
//! compiles to an `mt-asm` program. Loops are built with
//! [`Mahler::counted_loop`]; strip-mining is expressed the way the paper
//! did it — an explicit loop over fixed-length strips plus a remainder.
//!
//! # Example: DAXPY over one strip
//!
//! ```
//! use mt_mahler::Mahler;
//! use mt_fparith::FpOp;
//!
//! let mut m = Mahler::new();
//! let x = m.vector(8).unwrap();
//! let y = m.vector(8).unwrap();
//! let a = m.scalar().unwrap();
//! let xp = m.ivar().unwrap();
//! let yp = m.ivar().unwrap();
//! m.set_i(xp, 0x2000);
//! m.set_i(yp, 0x3000);
//! m.load_const(a, 3.0).unwrap();
//! m.load(x, xp, 0, 8).unwrap();
//! m.load(y, yp, 0, 8).unwrap();
//! m.vop_scalar(FpOp::Mul, x, x, a).unwrap();   // x = a*x
//! m.vop(FpOp::Add, y, y, x).unwrap();          // y = y + a*x
//! m.store(y, yp, 0, 8).unwrap();
//! let routine = m.finish().unwrap();
//! assert!(routine.program.len() > 20);
//! ```

pub mod expr;
pub mod routine;

pub use expr::VExpr;
pub use routine::{CompiledRoutine, IVar, Mahler, MahlerError, Scal, Vect};
