//! Vector expression trees with lifetime-based temporary allocation.
//!
//! §3 of the paper: "Register allocation was done by checking lifetimes of
//! subexpressions, which gave the number of vector values live at any
//! point in the code. Knowing that value and the number of registers on
//! the FPU allows a compiler to choose vector lengths."
//!
//! This module is that allocator: a [`VExpr`] tree is labelled with the
//! number of simultaneously-live vector temporaries it needs
//! (Sethi–Ullman numbering adapted to vector registers, where named
//! variables live in place and cost nothing), the deeper side of every
//! operator is evaluated first to keep that number minimal, and
//! temporaries come from a per-routine pool that grows only to the
//! labelled maximum — exceeding the register file raises the paper's
//! compile error.

use mt_fparith::FpOp;

use crate::routine::{IVar, Mahler, MahlerError, Scal, Vect};

/// A vector-valued expression.
#[derive(Debug, Clone)]
pub enum VExpr {
    /// An existing vector variable (costs no temporary; used in place).
    Var(Vect),
    /// A memory vector: `len` elements at `byte_offset(base)` with the
    /// given stride in bytes (loaded into a temporary).
    Load {
        /// Base address variable.
        base: IVar,
        /// Byte offset of element 0.
        offset: i32,
        /// Byte stride between elements.
        stride: i32,
    },
    /// An elementwise binary operation.
    Bin(FpOp, Box<VExpr>, Box<VExpr>),
    /// A vector–scalar operation: the scalar broadcasts (`SRb = 0`).
    BinScalar(FpOp, Box<VExpr>, Scal),
    /// A vector–constant operation (the constant is pooled).
    BinConst(FpOp, Box<VExpr>, f64),
}

impl VExpr {
    /// Convenience constructor for a variable leaf.
    pub fn var(v: Vect) -> VExpr {
        VExpr::Var(v)
    }

    /// Convenience constructor for a memory leaf.
    pub fn load(base: IVar, offset: i32, stride: i32) -> VExpr {
        VExpr::Load {
            base,
            offset,
            stride,
        }
    }

    /// `self op rhs`, elementwise.
    pub fn bin(self, op: FpOp, rhs: VExpr) -> VExpr {
        VExpr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self op scalar` with the scalar broadcast.
    pub fn bin_scalar(self, op: FpOp, s: Scal) -> VExpr {
        VExpr::BinScalar(op, Box::new(self), s)
    }

    /// `self op constant` with the constant broadcast from the pool.
    pub fn bin_const(self, op: FpOp, c: f64) -> VExpr {
        VExpr::BinConst(op, Box::new(self), c)
    }

    /// The Sethi–Ullman label: how many vector temporaries evaluating this
    /// expression needs simultaneously. Named variables are free; a memory
    /// leaf needs one; a binary node needs `max` of its sides, plus one
    /// when they tie (both sides' results must be live at once).
    pub fn temps_needed(&self) -> u32 {
        match self {
            VExpr::Var(_) => 0,
            VExpr::Load { .. } => 1,
            VExpr::Bin(_, l, r) => {
                let (nl, nr) = (l.temps_needed(), r.temps_needed());
                if nl == nr {
                    // Both sides need a live result simultaneously; a
                    // Var/Var tie still produces one result to hold.
                    nl + 1
                } else {
                    nl.max(nr).max(1)
                }
            }
            VExpr::BinScalar(_, l, _) | VExpr::BinConst(_, l, _) => l.temps_needed().max(1),
        }
    }

    /// `true` if any leaf of the expression reads registers overlapping
    /// `[first, first+len)` — the aliasing test that decides whether the
    /// destination can double as the evaluation scratch.
    fn reads_range(&self, first: u8, len: u8) -> bool {
        let overlap = |v: &Vect| {
            let (a0, a1) = (v.first().index(), v.first().index() + v.len());
            let (b0, b1) = (first, first + len);
            a0 < b1 && b0 < a1
        };
        match self {
            VExpr::Var(v) => overlap(v),
            VExpr::Load { .. } => false,
            VExpr::Bin(_, l, r) => reads(l, first, len) || reads(r, first, len),
            VExpr::BinScalar(_, l, s) => {
                reads(l, first, len) || (s.reg().index() >= first && s.reg().index() < first + len)
            }
            VExpr::BinConst(_, l, _) => reads(l, first, len),
        }
    }
}

fn reads(e: &VExpr, first: u8, len: u8) -> bool {
    e.reads_range(first, len)
}

/// Where an evaluated subexpression lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// A named variable, read in place (must not be clobbered).
    Named(Vect),
    /// A pool temporary (writable, returned to the pool when consumed).
    Temp(usize, Vect),
}

impl Place {
    fn vect(&self) -> Vect {
        match *self {
            Place::Named(v) | Place::Temp(_, v) => v,
        }
    }
}

/// The evaluation context: a pool of vector temporaries of one length.
struct Pool {
    len: u8,
    temps: Vec<Vect>,
    free: Vec<usize>,
}

impl Pool {
    fn acquire(&mut self, m: &mut Mahler) -> Result<(usize, Vect), MahlerError> {
        if let Some(i) = self.free.pop() {
            return Ok((i, self.temps[i]));
        }
        let v = m.vector(self.len)?;
        self.temps.push(v);
        Ok((self.temps.len() - 1, v))
    }

    fn release(&mut self, place: Place) {
        if let Place::Temp(i, _) = place {
            self.free.push(i);
        }
    }
}

impl Mahler {
    /// Evaluates `expr` elementwise into `dst` (length `dst.len()`),
    /// allocating at most [`VExpr::temps_needed`] vector temporaries from
    /// the routine's pool (they are reused by later `assign` calls of the
    /// same length).
    ///
    /// When `dst` does not alias any variable read by `expr`, it serves as
    /// the outermost scratch and the final operation lands directly in it.
    ///
    /// # Errors
    ///
    /// The paper's compile error when the temporaries exceed the register
    /// file, and length mismatches between `dst` and variable leaves.
    pub fn assign(&mut self, dst: Vect, expr: &VExpr) -> Result<(), MahlerError> {
        let mut pool = Pool {
            len: dst.len(),
            temps: Vec::new(),
            free: Vec::new(),
        };
        let dst_free = !expr.reads_range(dst.first().index(), dst.len());
        let place = self.eval(expr, dst, dst_free, &mut pool)?;
        // Materialize into dst if the value ended up elsewhere.
        let v = place.vect();
        if v.first() != dst.first() {
            // Exact copy through the multiply unit: x · 1.0 preserves every
            // bit pattern, including −0 (x + 0.0 would flip −0 to +0).
            let one = self.expr_one()?;
            self.vop_scalar(FpOp::Mul, dst, v, one)?;
        }
        pool.release(place);
        Ok(())
    }

    /// Evaluates `expr` and reduces it with the §3 summation operator into
    /// the scalar `dst`.
    ///
    /// # Errors
    ///
    /// As [`Mahler::assign`].
    pub fn assign_sum(&mut self, dst: Scal, len: u8, expr: &VExpr) -> Result<(), MahlerError> {
        // The reduction destroys its input, so evaluate into a temporary
        // owned by this call.
        let scratch = self.vector(len)?;
        self.assign(scratch, expr)?;
        self.vsum(dst, scratch)
    }

    fn expr_one(&mut self) -> Result<Scal, MahlerError> {
        let one = self.scalar()?;
        self.load_const(one, 1.0)?;
        Ok(one)
    }

    fn eval(
        &mut self,
        expr: &VExpr,
        dst: Vect,
        dst_free: bool,
        pool: &mut Pool,
    ) -> Result<Place, MahlerError> {
        match expr {
            VExpr::Var(v) => {
                if v.len() != dst.len() {
                    return Err(MahlerError::LengthMismatch {
                        dst: dst.len(),
                        src: v.len(),
                    });
                }
                Ok(Place::Named(*v))
            }
            VExpr::Load {
                base,
                offset,
                stride,
            } => {
                let (i, t) = pool.acquire(self)?;
                self.load(t, *base, *offset, *stride)?;
                Ok(Place::Temp(i, t))
            }
            VExpr::Bin(op, l, r) => {
                // Deeper side first (Sethi–Ullman order).
                let (first, second, swapped) = if r.temps_needed() > l.temps_needed() {
                    (r.as_ref(), l.as_ref(), true)
                } else {
                    (l.as_ref(), r.as_ref(), false)
                };
                let pf = self.eval(first, dst, dst_free, pool)?;
                let ps = self.eval(second, dst, dst_free, pool)?;
                let (pl, pr) = if swapped { (ps, pf) } else { (pf, ps) };
                let out = self.result_place(&pl, &pr, dst, dst_free, pool)?;
                self.vop(*op, out.vect(), pl.vect(), pr.vect())?;
                self.release_consumed(pl, pr, &out, pool);
                Ok(out)
            }
            VExpr::BinScalar(op, l, s) => {
                let pl = self.eval(l, dst, dst_free, pool)?;
                let out = self.result_place_unary(&pl, dst, dst_free, pool)?;
                self.vop_scalar(*op, out.vect(), pl.vect(), *s)?;
                self.release_one(pl, &out, pool);
                Ok(out)
            }
            VExpr::BinConst(op, l, c) => {
                let s = self.scalar()?;
                self.load_const(s, *c)?;
                let pl = self.eval(l, dst, dst_free, pool)?;
                let out = self.result_place_unary(&pl, dst, dst_free, pool)?;
                self.vop_scalar(*op, out.vect(), pl.vect(), s)?;
                self.release_one(pl, &out, pool);
                Ok(out)
            }
        }
    }

    /// Chooses where a binary result goes: reuse an operand temporary,
    /// else the (non-aliasing) destination, else a fresh temporary.
    fn result_place(
        &mut self,
        pl: &Place,
        pr: &Place,
        dst: Vect,
        dst_free: bool,
        pool: &mut Pool,
    ) -> Result<Place, MahlerError> {
        match (pl, pr) {
            (Place::Temp(i, v), _) => Ok(Place::Temp(*i, *v)),
            (_, Place::Temp(i, v)) => Ok(Place::Temp(*i, *v)),
            _ if dst_free => Ok(Place::Named(dst)),
            _ => {
                let (i, v) = pool.acquire(self)?;
                Ok(Place::Temp(i, v))
            }
        }
    }

    fn result_place_unary(
        &mut self,
        pl: &Place,
        dst: Vect,
        dst_free: bool,
        pool: &mut Pool,
    ) -> Result<Place, MahlerError> {
        match pl {
            Place::Temp(i, v) => Ok(Place::Temp(*i, *v)),
            _ if dst_free => Ok(Place::Named(dst)),
            _ => {
                let (i, v) = pool.acquire(self)?;
                Ok(Place::Temp(i, v))
            }
        }
    }

    /// Returns operand temporaries that were not chosen as the result.
    fn release_consumed(&mut self, pl: Place, pr: Place, out: &Place, pool: &mut Pool) {
        for p in [pl, pr] {
            if let (Place::Temp(i, _), Place::Temp(oi, _)) = (&p, out) {
                if i != oi {
                    pool.release(p);
                }
            } else if matches!(p, Place::Temp(..)) && matches!(out, Place::Named(_)) {
                pool.release(p);
            }
        }
    }

    fn release_one(&mut self, pl: Place, out: &Place, pool: &mut Pool) {
        self.release_consumed(pl, Place::Named(out.vect()), out, pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_sim::{Machine, SimConfig};

    fn run(m: Mahler, setup: impl Fn(&mut Machine)) -> Machine {
        let routine = m.finish().unwrap();
        let mut machine = Machine::new(SimConfig::default());
        routine.install(&mut machine);
        machine.warm_instructions(&routine.program);
        setup(&mut machine);
        machine.run().expect("halts");
        machine
    }

    #[test]
    fn sethi_ullman_labels() {
        let m = &mut Mahler::new();
        let p = m.ivar().unwrap();
        let v = m.vector(4).unwrap();
        let ld = || VExpr::load(p, 0, 8);
        assert_eq!(VExpr::var(v).temps_needed(), 0);
        assert_eq!(ld().temps_needed(), 1);
        // load op load: both live at once → 2.
        assert_eq!(ld().bin(FpOp::Add, ld()).temps_needed(), 2);
        // var op load: 1.
        assert_eq!(VExpr::var(v).bin(FpOp::Add, ld()).temps_needed(), 1);
        // A left-leaning chain of loads stays at 2 regardless of depth.
        let chain = ld()
            .bin(FpOp::Add, ld())
            .bin(FpOp::Mul, ld())
            .bin(FpOp::Sub, ld());
        assert_eq!(chain.temps_needed(), 2);
        // A balanced tree of 4 loads needs 3.
        let balanced = ld()
            .bin(FpOp::Add, ld())
            .bin(FpOp::Mul, ld().bin(FpOp::Add, ld()));
        assert_eq!(balanced.temps_needed(), 3);
    }

    #[test]
    fn loop1_as_an_expression() {
        // x[k] = q + y[k]·(r·z[k+10] + t·z[k+11]) over one strip.
        let (q, r, t) = (0.05, 0.5, 0.25);
        let mut m = Mahler::new();
        let dst = m.vector(8).unwrap();
        let (py, pz, px) = (m.ivar().unwrap(), m.ivar().unwrap(), m.ivar().unwrap());
        m.set_i(py, 0x2000);
        m.set_i(pz, 0x3000);
        m.set_i(px, 0x4000);
        let expr = VExpr::load(pz, 80, 8)
            .bin_const(FpOp::Mul, r)
            .bin(FpOp::Add, VExpr::load(pz, 88, 8).bin_const(FpOp::Mul, t))
            .bin(FpOp::Mul, VExpr::load(py, 0, 8))
            .bin_const(FpOp::Add, q);
        m.assign(dst, &expr).unwrap();
        m.store(dst, px, 0, 8).unwrap();

        let machine = run(m, |mm| {
            for k in 0..8u32 {
                mm.mem.memory.write_f64(0x2000 + 8 * k, 1.0 + k as f64);
            }
            for k in 0..19u32 {
                mm.mem.memory.write_f64(0x3000 + 8 * k, 0.1 * k as f64);
            }
        });
        for k in 0..8usize {
            let y = 1.0 + k as f64;
            let z10 = 0.1 * (k + 10) as f64;
            let z11 = 0.1 * (k + 11) as f64;
            let want = (z10 * r + z11 * t) * y + q;
            let got = machine.mem.memory.read_f64(0x4000 + 8 * k as u32);
            assert!((got - want).abs() < 1e-12, "x[{k}] = {got}, want {want}");
        }
    }

    #[test]
    fn destination_aliasing_is_detected() {
        // dst appears on both sides: y = y·y + y must still be correct.
        let mut m = Mahler::new();
        let y = m.vector(4).unwrap();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        m.load(y, p, 0, 8).unwrap();
        let expr = VExpr::var(y)
            .bin(FpOp::Mul, VExpr::var(y))
            .bin(FpOp::Add, VExpr::var(y));
        m.assign(y, &expr).unwrap();
        m.store(y, p, 64, 8).unwrap();
        let machine = run(m, |mm| {
            for k in 0..4u32 {
                mm.mem.memory.write_f64(0x2000 + 8 * k, 2.0 + k as f64);
            }
        });
        for k in 0..4usize {
            let v = 2.0 + k as f64;
            assert_eq!(
                machine.mem.memory.read_f64(0x2040 + 8 * k as u32),
                v * v + v
            );
        }
    }

    #[test]
    fn reduction_through_assign_sum() {
        // q = Σ x[k]·z[k] — the §2.1.1 dot product via the expression layer.
        let mut m = Mahler::new();
        let q = m.scalar().unwrap();
        let (px, pz, pq) = (m.ivar().unwrap(), m.ivar().unwrap(), m.ivar().unwrap());
        m.set_i(px, 0x2000);
        m.set_i(pz, 0x2100);
        m.set_i(pq, 0x2200);
        let expr = VExpr::load(px, 0, 8).bin(FpOp::Mul, VExpr::load(pz, 0, 8));
        m.assign_sum(q, 8, &expr).unwrap();
        m.store_scalar(q, pq, 0).unwrap();
        let machine = run(m, |mm| {
            for k in 0..8u32 {
                mm.mem.memory.write_f64(0x2000 + 8 * k, k as f64);
                mm.mem.memory.write_f64(0x2100 + 8 * k, 2.0);
            }
        });
        let want: f64 = (0..8).map(|k| 2.0 * k as f64).sum();
        assert_eq!(machine.mem.memory.read_f64(0x2200), want);
    }

    #[test]
    fn temp_pool_is_bounded_by_the_label() {
        // A balanced 4-load tree labelled 3 must not allocate more than 3
        // vector temporaries (24 registers at length 8).
        let mut m = Mahler::new();
        let dst = m.vector(8).unwrap();
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        let before = m.fpu_registers_left();
        let ld = || VExpr::load(p, 0, 8);
        let expr = ld()
            .bin(FpOp::Add, ld())
            .bin(FpOp::Mul, ld().bin(FpOp::Add, ld()));
        assert_eq!(expr.temps_needed(), 3);
        m.assign(dst, &expr).unwrap();
        let used = before - m.fpu_registers_left();
        // 3 temporaries plus at most two support scalars (the §2.3.2 fence
        // sink and the copy zero).
        assert!(
            used <= 3 * 8 + 2,
            "allocated {used} registers for a 3-temp expression"
        );
    }

    #[test]
    fn register_exhaustion_is_the_papers_compile_error() {
        let mut m = Mahler::new();
        // Eat almost the whole file first.
        for _ in 0..5 {
            m.vector(8).unwrap();
        }
        let dst = m.vector(8).unwrap(); // 48 used
        let p = m.ivar().unwrap();
        m.set_i(p, 0x2000);
        let ld = || VExpr::load(p, 0, 8);
        // Needs two temporaries (16 registers): only 4 remain.
        let expr = ld().bin(FpOp::Add, ld());
        match m.assign(dst, &expr) {
            Err(MahlerError::OutOfFpuRegisters { .. }) => {}
            other => panic!("expected the compile error, got {other:?}"),
        }
    }
}
