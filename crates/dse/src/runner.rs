//! The sweep runner: grid cells × kernels → per-cell results with a
//! Pareto summary.
//!
//! Every (cell, kernel) pair is an independent simulation, so the runner
//! flattens the full grid into one work list and fans it across cores
//! with [`crate::sweep::sweep`] — a slow cell does not serialize the
//! cheap ones behind it, and results come back in deterministic order.

use mt_kernels::{harness, livermore, KernelReport};
use mt_sim::{MachineConfig, SimConfig};

/// One concrete machine to measure: a point in the design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Self-describing name — the swept `knob=value` list, or a label
    /// like `"unified-52"` for hand-built comparison cells.
    pub name: String,
    /// The machine at this point.
    pub machine: MachineConfig,
    /// Run with the Load/Store and ALU instruction registers serialized
    /// (the split-register-file proxy: no vector/scalar overlap).
    pub serialized_issue: bool,
    /// Register-file bits charged to this design on the Pareto cost axis.
    /// Defaults to [`MachineConfig::reg_file_bits`]; comparison cells that
    /// model a *different* register organization at the same simulated
    /// timing (the classical 8×64-element split file) override it.
    pub reg_file_bits: u64,
}

impl CellSpec {
    /// A cell charged its machine's own register-file bits.
    pub fn new(name: String, machine: MachineConfig, serialized_issue: bool) -> CellSpec {
        CellSpec {
            name,
            reg_file_bits: machine.reg_file_bits(),
            machine,
            serialized_issue,
        }
    }

    /// The `SimConfig` this cell runs under: default everything except the
    /// machine and the issue-policy ablation. `POST /sweep` and `repro-dse`
    /// both build cell configs here, which is why they agree bit-for-bit.
    pub fn config(&self) -> SimConfig {
        SimConfig {
            machine: self.machine,
            serialized_issue: self.serialized_issue,
            ..SimConfig::default()
        }
    }
}

/// One cell's measurements over every kernel in the sweep.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The design point that was measured.
    pub spec: CellSpec,
    /// Per-kernel cold/warm reports, in kernel order. Empty iff `error`.
    pub reports: Vec<KernelReport>,
    /// The failure, if any kernel failed to run or verify under this
    /// machine (a sweep does not abort because one corner is broken).
    pub error: Option<String>,
}

impl CellResult {
    /// Harmonic-mean warm MFLOPS over the kernels — the paper's summary
    /// statistic (a harmonic mean weights the slow kernels, as total
    /// runtime does).
    pub fn warm_hm_mflops(&self) -> f64 {
        harmonic_mean(self.reports.iter().map(|r| r.mflops_warm()))
    }

    /// Warm cycles per issued FPU element, summed over the kernels — the
    /// CPI-style axis for lane sweeps.
    pub fn warm_cycles_per_element(&self) -> f64 {
        let cycles: u64 = self.reports.iter().map(|r| r.warm.cycles).sum();
        let elements: u64 = self
            .reports
            .iter()
            .map(|r| r.warm.fpu.elements_issued)
            .sum();
        if elements == 0 {
            0.0
        } else {
            cycles as f64 / elements as f64
        }
    }
}

fn harmonic_mean(rates: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut sum) = (0u32, 0.0f64);
    for r in rates {
        n += 1;
        sum += 1.0 / r;
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / sum
    }
}

/// Runs every cell over the given Livermore loops (by number), fanning
/// all (cell × kernel) pairs across cores at once. Results are in cell
/// order, each with reports in kernel order; per-cell failures are
/// recorded, not propagated.
pub fn run_grid(cells: &[CellSpec], loops: &[u8]) -> Vec<CellResult> {
    let work: Vec<(usize, u8)> = cells
        .iter()
        .enumerate()
        .flat_map(|(c, _)| loops.iter().map(move |&n| (c, n)))
        .collect();
    let runs = crate::sweep::sweep(&work, |&(c, n)| {
        let cell = &cells[c];
        let kernel = livermore::by_number(n);
        cell.machine
            .validate_program(&kernel.routine.program)
            .and_then(|()| harness::run_kernel_with(&kernel, cell.config()))
    });

    let mut out: Vec<CellResult> = cells
        .iter()
        .map(|spec| CellResult {
            spec: spec.clone(),
            reports: Vec::new(),
            error: None,
        })
        .collect();
    for ((c, _), run) in work.into_iter().zip(runs) {
        let cell = &mut out[c];
        match run {
            Ok(report) if cell.error.is_none() => cell.reports.push(report),
            Ok(_) => {}
            Err(e) => {
                // First failure wins; a failed cell reports no numbers
                // (partial means would silently skew the summary).
                if cell.error.is_none() {
                    cell.error = Some(e);
                    cell.reports.clear();
                }
            }
        }
    }
    out
}

/// Indices of the Pareto-optimal cells: no other successful cell is at
/// least as fast (harmonic-mean warm MFLOPS) with at most as many
/// register-file bits *and* at most as many element lanes, strictly
/// better somewhere. Failed cells never qualify.
pub fn pareto_front(results: &[CellResult]) -> Vec<usize> {
    let points: Vec<Option<(f64, u64, u64)>> = results
        .iter()
        .map(|r| {
            r.error.is_none().then(|| {
                (
                    r.warm_hm_mflops(),
                    r.spec.reg_file_bits,
                    r.spec.machine.timing.fpu_lanes,
                )
            })
        })
        .collect();
    pareto_of_points(&points)
}

/// [`pareto_front`] over raw `(warm MFLOPS, register bits, lanes)`
/// points (`None` = failed cell, never on the front). `POST /sweep`
/// computes its front here from parsed per-cell numbers, so the service
/// and `repro-dse` agree by construction.
pub fn pareto_of_points(points: &[Option<(f64, u64, u64)>]) -> Vec<usize> {
    let dominates = |a: (f64, u64, u64), b: (f64, u64, u64)| {
        a.0 >= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 > b.0 || a.1 < b.1 || a.2 < b.2)
    };
    (0..points.len())
        .filter(|&i| {
            points[i].is_some_and(|p| {
                !points
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && other.is_some_and(|o| dominates(o, p)))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn default_cell_matches_the_plain_harness() {
        let cell = CellSpec::new("default".into(), MachineConfig::default(), false);
        let results = run_grid(std::slice::from_ref(&cell), &[7]);
        assert_eq!(results.len(), 1);
        assert!(results[0].error.is_none());
        let direct = harness::run_kernel(&livermore::by_number(7)).unwrap();
        assert_eq!(results[0].reports[0].warm.cycles, direct.warm.cycles);
        assert_eq!(results[0].reports[0].cold.cycles, direct.cold.cycles);
        assert!(results[0].warm_hm_mflops() > 0.0);
        assert!(results[0].warm_cycles_per_element() > 0.0);
        assert_eq!(results[0].spec.reg_file_bits, 52 * 64);
    }

    #[test]
    fn grid_results_line_up_cell_by_cell() {
        let cells = GridSpec::parse("fpu_latency=1,6")
            .unwrap()
            .enumerate()
            .unwrap();
        let results = run_grid(&cells, &[3, 7]);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.reports.len(), 2, "{}", r.spec.name);
            assert!(r.error.is_none());
        }
        // Longer FPU latency can never speed a kernel up.
        assert!(
            results[1].reports[1].warm.cycles >= results[0].reports[1].warm.cycles,
            "latency 6 at least as slow as latency 1"
        );
    }

    #[test]
    fn a_cell_too_small_for_the_kernel_reports_an_error() {
        let tiny = MachineConfig {
            num_fpu_regs: 2,
            ..MachineConfig::default()
        };
        let cells = [
            CellSpec::new("tiny".into(), tiny, false),
            CellSpec::new("default".into(), MachineConfig::default(), false),
        ];
        let results = run_grid(&cells, &[7]);
        assert!(results[0].error.is_some(), "2 registers cannot hold LL7");
        assert!(results[0].reports.is_empty());
        assert!(results[1].error.is_none(), "other cells unaffected");
    }

    #[test]
    fn pareto_front_drops_dominated_cells() {
        let mk = |name: &str, mflops: f64, bits: u64| {
            let mut r = CellResult {
                spec: CellSpec::new(name.into(), MachineConfig::default(), false),
                reports: Vec::new(),
                error: None,
            };
            r.spec.reg_file_bits = bits;
            // Fake a single-report cell with the desired rate: mflops()
            // is flops-per-cycle scaled, so craft stats directly.
            let mut report = harness::run_kernel(&livermore::by_number(12)).unwrap();
            report.warm.fpu.flops = (mflops * report.warm.cycles as f64 / 25.0) as u64;
            r.reports.push(report);
            r
        };
        let results = vec![
            mk("fast-cheap", 20.0, 1000),  // dominates everything
            mk("fast-costly", 20.0, 2000), // dominated: same speed, more bits
            mk("slow-cheap", 5.0, 1000),   // dominated: slower, same bits
        ];
        let front = pareto_front(&results);
        assert_eq!(front, vec![0]);
    }
}
