//! Parallel sweep driver for independent simulation points.
//!
//! Every sweep in the workspace — the 24 Livermore loops, the ablation
//! configurations, the serialized-issue Amdahl runs, and every mt-dse
//! grid cell — is embarrassingly parallel: each point builds its own
//! [`mt_sim::Machine`] and shares nothing. This module fans the points
//! out over `std::thread::scope` workers and collects the results **in
//! deterministic input order**, so documents built from them
//! (`BENCH_sim.json` and `BENCH_dse.json` in particular) are byte-stable
//! no matter how many workers ran or how the OS scheduled them.
//!
//! Workers pull indices from a shared atomic counter (work stealing), so
//! an expensive point (say, a cold Linpack) does not serialize the cheap
//! ones behind it. With one available core, or one input, the driver runs
//! inline with zero threading overhead.
//!
//! (This module lived in `mt_bench::sweep` until the dse engine needed it
//! below the bench layer; `mt_bench::sweep` re-exports it unchanged.)

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads: sweeps are compute-bound, so more
/// workers than cores only adds scheduling noise.
fn worker_count(inputs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs)
}

/// Applies `f` to every input, in parallel across the machine's cores,
/// returning the results in input order (deterministic regardless of
/// scheduling). `f` must be `Sync` because all workers share it; inputs
/// are read in place.
pub fn sweep<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = worker_count(inputs.len());
    if workers <= 1 {
        return inputs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(i) else { break };
                        out.push((i, f(input)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), inputs.len());
    tagged.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = sweep(&inputs, |&n| n * n);
        assert_eq!(out, inputs.iter().map(|n| n * n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(sweep(&none, |&n| n).is_empty());
        assert_eq!(sweep(&[7u32], |&n| n + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_sequential_on_a_real_kernel() {
        let run = |n: u8| {
            mt_kernels::harness::run_kernel(&mt_kernels::livermore::by_number(n))
                .unwrap()
                .warm
                .cycles
        };
        let nums = [3u8, 11];
        let parallel = sweep(&nums, |&n| run(n));
        let sequential: Vec<u64> = nums.iter().map(|&n| run(n)).collect();
        assert_eq!(parallel, sequential);
    }
}
