//! Declarative sweep grids: knob axes → concrete machine cells.
//!
//! A grid spec is a tiny line-oriented text format (also the body of
//! `POST /sweep`):
//!
//! ```text
//! # one knob per line; '#' starts a comment
//! mode=cartesian            # or "paired"; cartesian is the default
//! fpu_latency=1,3,5
//! fpu_lanes=1,2,4
//! serialized_issue=0,1      # cell-level ablation knob (not a machine knob)
//! ```
//!
//! `cartesian` expands the cross product of every axis; `paired` requires
//! equal-length axes and takes one value per axis per cell (cell *i* is
//! column *i*), for sweeps along a diagonal. Every expanded cell is
//! validated through [`MachineConfig::validate`], so an axis cannot smuggle
//! in an inconsistent machine.

use mt_sim::{MachineConfig, KNOB_NAMES};

use crate::runner::CellSpec;

/// How axes combine into cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridMode {
    /// Cross product of all axes.
    #[default]
    Cartesian,
    /// One value per axis per cell; all axes must have equal length.
    Paired,
}

impl GridMode {
    /// Lower-case name, as written in the spec text.
    pub fn name(self) -> &'static str {
        match self {
            GridMode::Cartesian => "cartesian",
            GridMode::Paired => "paired",
        }
    }
}

/// The cell-level ablation axis: serialize the Load/Store and ALU
/// instruction registers (`SimConfig::serialized_issue`), the proxy for a
/// classical split register file with no vector/scalar overlap. Not a
/// [`MachineConfig`] knob — it changes issue policy, not geometry.
pub const SERIALIZED_ISSUE_AXIS: &str = "serialized_issue";

/// One sweep axis: a knob name and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// A [`KNOB_NAMES`] entry or [`SERIALIZED_ISSUE_AXIS`].
    pub knob: String,
    /// The values this axis sweeps over, in spec order.
    pub values: Vec<u64>,
}

/// A parsed sweep specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GridSpec {
    /// Axis combination rule.
    pub mode: GridMode,
    /// The axes, in spec order (the order determines cell enumeration
    /// order: the last axis varies fastest under [`GridMode::Cartesian`]).
    pub axes: Vec<Axis>,
}

impl GridSpec {
    /// Parses the line-oriented spec text. Unknown knobs, duplicate axes,
    /// empty value lists, and malformed numbers are errors; the *geometry*
    /// of each resulting machine is checked later, in
    /// [`GridSpec::enumerate`].
    pub fn parse(text: &str) -> Result<GridSpec, String> {
        let mut spec = GridSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("grid line {}: {msg}", lineno + 1);
            let (name, rhs) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected knob=v1,v2,... in {line:?}")))?;
            let name = name.trim();
            if name == "mode" {
                spec.mode = match rhs.trim() {
                    "cartesian" => GridMode::Cartesian,
                    "paired" => GridMode::Paired,
                    other => {
                        return Err(err(format!(
                            "unknown mode {other:?} (expected cartesian or paired)"
                        )))
                    }
                };
                continue;
            }
            if name != SERIALIZED_ISSUE_AXIS && !KNOB_NAMES.contains(&name) {
                return Err(err(format!(
                    "unknown knob {name:?} (expected one of: {}, {SERIALIZED_ISSUE_AXIS})",
                    KNOB_NAMES.join(", ")
                )));
            }
            if spec.axes.iter().any(|a| a.knob == name) {
                return Err(err(format!("duplicate axis {name:?}")));
            }
            let values = rhs
                .split(',')
                .map(|v| {
                    let v = v.trim();
                    v.parse::<u64>()
                        .map_err(|_| err(format!("axis {name:?} has non-numeric value {v:?}")))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            if values.is_empty() {
                return Err(err(format!("axis {name:?} has no values")));
            }
            if name == SERIALIZED_ISSUE_AXIS && values.iter().any(|&v| v > 1) {
                return Err(err(format!(
                    "{SERIALIZED_ISSUE_AXIS} values must be 0 or 1"
                )));
            }
            spec.axes.push(Axis {
                knob: name.to_string(),
                values,
            });
        }
        if spec.axes.is_empty() {
            return Err("grid spec has no axes".to_string());
        }
        if spec.mode == GridMode::Paired {
            let len = spec.axes[0].values.len();
            if spec.axes.iter().any(|a| a.values.len() != len) {
                return Err("paired mode requires equal-length axes".to_string());
            }
        }
        Ok(spec)
    }

    /// Number of cells this spec expands to, without expanding it —
    /// callers with a budget (the service caps grids) check this first.
    pub fn cell_count(&self) -> usize {
        match self.mode {
            GridMode::Cartesian => self
                .axes
                .iter()
                .fold(1usize, |n, a| n.saturating_mul(a.values.len())),
            GridMode::Paired => self.axes.first().map_or(0, |a| a.values.len()),
        }
    }

    /// Expands the spec into concrete, validated cells. Each cell starts
    /// from the default (paper) machine and applies one value per axis;
    /// the cell name is the canonical `knob=value` list of *swept* knobs
    /// only, so grid cells are self-describing in reports.
    pub fn enumerate(&self) -> Result<Vec<CellSpec>, String> {
        let count = self.cell_count();
        let mut cells = Vec::with_capacity(count);
        for i in 0..count {
            let mut machine = MachineConfig::default();
            let mut serialized_issue = false;
            let mut parts = Vec::with_capacity(self.axes.len());
            // Index into each axis for cell i: mixed-radix digits under
            // cartesian (last axis fastest), the shared column under paired.
            let mut rest = i;
            for (k, axis) in self.axes.iter().enumerate().rev() {
                let j = match self.mode {
                    GridMode::Cartesian => {
                        let j = rest % axis.values.len();
                        rest /= axis.values.len();
                        j
                    }
                    GridMode::Paired => i,
                };
                let value = axis.values[j];
                if axis.knob == SERIALIZED_ISSUE_AXIS {
                    serialized_issue = value != 0;
                } else {
                    machine.set_knob(&axis.knob, value)?;
                }
                parts.push((k, format!("{}={value}", axis.knob)));
            }
            machine.validate().map_err(|e| format!("cell {i}: {e}"))?;
            parts.sort_by_key(|&(k, _)| k);
            let name = parts
                .into_iter()
                .map(|(_, p)| p)
                .collect::<Vec<_>>()
                .join(",");
            cells.push(CellSpec::new(name, machine, serialized_issue));
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_expands_the_cross_product_last_axis_fastest() {
        let spec = GridSpec::parse("fpu_latency=1,3\nfpu_lanes=1,2,4\n").unwrap();
        assert_eq!(spec.mode, GridMode::Cartesian);
        assert_eq!(spec.cell_count(), 6);
        let cells = spec.enumerate().unwrap();
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "fpu_latency=1,fpu_lanes=1",
                "fpu_latency=1,fpu_lanes=2",
                "fpu_latency=1,fpu_lanes=4",
                "fpu_latency=3,fpu_lanes=1",
                "fpu_latency=3,fpu_lanes=2",
                "fpu_latency=3,fpu_lanes=4",
            ]
        );
        assert_eq!(cells[0].machine.timing.fpu_latency, 1);
        assert_eq!(cells[2].machine.timing.fpu_lanes, 4);
        assert_eq!(cells[5].machine.timing.fpu_latency, 3);
    }

    #[test]
    fn paired_takes_one_column_per_cell() {
        let spec = GridSpec::parse("mode=paired\nfpu_latency=1,5\ndcache_miss=7,28\n").unwrap();
        let cells = spec.enumerate().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].machine.timing.fpu_latency, 1);
        assert_eq!(cells[0].machine.mem.data_cache.miss_penalty, 7);
        assert_eq!(cells[1].machine.timing.fpu_latency, 5);
        assert_eq!(cells[1].machine.mem.data_cache.miss_penalty, 28);
    }

    #[test]
    fn serialized_issue_is_a_cell_flag_not_a_machine_knob() {
        let spec = GridSpec::parse("serialized_issue=0,1\n").unwrap();
        let cells = spec.enumerate().unwrap();
        assert!(!cells[0].serialized_issue);
        assert!(cells[1].serialized_issue);
        assert_eq!(cells[0].machine, MachineConfig::default());
        assert_eq!(cells[1].machine, MachineConfig::default());
        assert!(GridSpec::parse("serialized_issue=2").is_err());
    }

    #[test]
    fn comments_blank_lines_and_whitespace_are_tolerated() {
        let spec = GridSpec::parse(
            "# a comment\n\n  fpu_lanes = 1, 2  # trailing comment\nmode=cartesian\n",
        )
        .unwrap();
        assert_eq!(spec.axes.len(), 1);
        assert_eq!(spec.axes[0].values, [1, 2]);
    }

    #[test]
    fn malformed_specs_are_rejected_with_line_numbers() {
        assert!(GridSpec::parse("").is_err(), "no axes");
        assert!(GridSpec::parse("bogus_knob=1").is_err(), "unknown knob");
        assert!(
            GridSpec::parse("fpu_latency=1\nfpu_latency=2").is_err(),
            "dup"
        );
        assert!(GridSpec::parse("fpu_latency=a").is_err(), "non-numeric");
        assert!(GridSpec::parse("fpu_latency=").is_err(), "empty value");
        assert!(GridSpec::parse("mode=diagonal").is_err(), "unknown mode");
        assert!(
            GridSpec::parse("mode=paired\nfpu_latency=1,2\nfpu_lanes=1").is_err(),
            "unequal paired axes"
        );
        let err = GridSpec::parse("fpu_lanes=1\nfpu_latency=oops").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn invalid_cell_geometry_fails_at_enumeration() {
        // Parses fine (24 is a number) but 24-byte lines are not a
        // power of two, so the expanded machine fails validation.
        let spec = GridSpec::parse("dcache_line=24").unwrap();
        assert!(spec.enumerate().is_err());
    }
}
