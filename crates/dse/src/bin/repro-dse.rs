//! The committed design-space sweep behind `BENCH_dse.json`.
//!
//! Two studies over a representative Livermore subset:
//!
//! * **Latency × lanes grid** — FPU latency {1, 3, 5} crossed with
//!   element-issue lanes {1, 2, 4}. The paper's point (latency 3, one
//!   lane) sits in the middle; the sweep shows how much §2.2's "low
//!   latency is essential" buys and how little extra lanes help when one
//!   load/store port feeds them.
//! * **Unified vs classical split file** (§2.1.2) — the unified
//!   52-register design against a classical-vector-machine proxy: issue
//!   serialized (no vector/scalar overlap) and the register state charged
//!   at 8 vector registers × 64 elements × 64 bits = 32768 bits, ten
//!   times the unified file's 3328.
//!
//! `--json` emits the byte-stable `mt-dse-v1` document (plus an
//! `elapsed_ms` wall-clock field the benchdiff `dse` profile ignores);
//! CI regenerates `BENCH_dse.json` from it and byte-diffs.

use mt_dse::grid::GridSpec;
use mt_dse::runner::{pareto_front, run_grid, CellResult, CellSpec};
use mt_sim::MachineConfig;
use mt_trace::Json;

/// Spans the vectorizable (1, 7, 12), reduction (3), recurrence (5, 11),
/// and scalar (21, 23) Livermore classes — same subset as
/// `repro-ablations`.
const LOOPS: [u8; 8] = [1, 3, 5, 7, 11, 12, 21, 23];

/// The committed grid: both axes of the tentpole question.
const GRID: &str = "mode=cartesian\nfpu_latency=1,3,5\nfpu_lanes=1,2,4\n";

/// Classical 8×64-element split file: 8 × 64 × 64 bits.
const SPLIT_FILE_BITS: u64 = 8 * 64 * 64;

fn comparison_cells() -> Vec<CellSpec> {
    let unified = CellSpec::new("unified-52".into(), MachineConfig::default(), false);
    let mut split = CellSpec::new("split-8x64".into(), MachineConfig::default(), true);
    split.reg_file_bits = SPLIT_FILE_BITS;
    vec![unified, split]
}

fn json_report(grid: &GridSpec, results: &[CellResult], comparison: &[CellResult], ms: u128) {
    let mut doc = mt_dse::json::sweep_json(grid, &LOOPS, results);
    doc.push(
        "comparison",
        Json::Arr(comparison.iter().map(mt_dse::json::cell_json).collect()),
    );
    doc.push("elapsed_ms", Json::U64(ms as u64));
    println!("{}", doc.pretty());
}

fn main() {
    let started = std::time::Instant::now();
    let grid = GridSpec::parse(GRID).expect("the committed grid parses");
    let cells = grid.enumerate().expect("the committed grid is valid");
    let results = run_grid(&cells, &LOOPS);
    let comparison = run_grid(&comparison_cells(), &LOOPS);

    if std::env::args().any(|a| a == "--json") {
        json_report(&grid, &results, &comparison, started.elapsed().as_millis());
        return;
    }

    println!("Design-space sweep (harmonic-mean MFLOPS over Livermore loops {LOOPS:?})\n");
    println!("FPU latency × element lanes:");
    println!(
        "  {:<28} {:>12} {:>12} {:>14}",
        "cell", "warm MFLOPS", "cyc/elem", "regfile bits"
    );
    for r in &results {
        match &r.error {
            Some(e) => println!("  {:<28} failed: {e}", r.spec.name),
            None => println!(
                "  {:<28} {:>12.2} {:>12.2} {:>14}",
                r.spec.name,
                r.warm_hm_mflops(),
                r.warm_cycles_per_element(),
                r.spec.reg_file_bits
            ),
        }
    }

    println!("\nPareto front (max MFLOPS, min register bits, min lanes):");
    for i in pareto_front(&results) {
        println!(
            "  {:<28} {:>8.2} MFLOPS",
            results[i].spec.name,
            results[i].warm_hm_mflops()
        );
    }

    println!("\nUnified 52-register file vs classical 8x64 split file (S2.1.2):");
    for r in &comparison {
        println!(
            "  {:<12} {:>8.2} warm MFLOPS at {:>6} register bits",
            r.spec.name,
            r.warm_hm_mflops(),
            r.spec.reg_file_bits
        );
    }
    let (u, s) = (&comparison[0], &comparison[1]);
    println!(
        "  -> the unified file reaches {:.1}x the split proxy's rate with {:.1}x fewer bits",
        u.warm_hm_mflops() / s.warm_hm_mflops(),
        SPLIT_FILE_BITS as f64 / u.spec.reg_file_bits as f64
    );
}
