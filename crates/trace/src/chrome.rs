//! Chrome trace-event exporter (the JSON object format Perfetto and
//! `chrome://tracing` load).
//!
//! One fake process, one track ("thread") per functional unit or port:
//! the CPU, the FPU ALU element pipeline, the load/store port, CPU
//! stalls, and the FPU scoreboard. Element issues become duration events
//! spanning their functional-unit latency; retirements and overflow
//! aborts become instants. Timestamps map one cycle to one microsecond
//! (the real clock is 40 ns; `otherData.cycle_ns` records it) and are
//! emitted in non-decreasing order, per the trace-event spec.

use mt_fparith::FpOp;

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;

/// Track ("thread") ids in the exported trace.
mod tid {
    pub const CPU: u64 = 1;
    pub const FPU_ALU: u64 = 2;
    pub const LS_PORT: u64 = 3;
    pub const STALLS: u64 = 4;
    pub const SCOREBOARD: u64 = 5;
}

fn op_name(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "fadd",
        FpOp::Sub => "fsub",
        FpOp::Mul => "fmul",
        FpOp::IntMul => "fimul",
        FpOp::IterStep => "fistep",
        FpOp::Float => "ffloat",
        FpOp::Truncate => "ftrunc",
        FpOp::Recip => "frecip",
    }
}

/// One trace-event object. Public building block: `mt-obs` reuses this
/// exporter for request spans, so both trace flavors stay loadable by
/// the same tools.
pub fn entry(name: String, ph: &str, ts: u64, tid: u64, args: Vec<(String, Json)>) -> Json {
    let mut ev = Json::obj([
        ("name", Json::Str(name)),
        ("ph", Json::Str(ph.to_string())),
        ("ts", Json::U64(ts)),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
    ]);
    if ph == "i" {
        // Thread-scoped instant.
        ev.push("s", Json::Str("t".to_string()));
    }
    if !args.is_empty() {
        ev.push("args", Json::Obj(args));
    }
    ev
}

/// A duration ("complete") event of at least one time unit.
pub fn complete(name: String, ts: u64, dur: u64, tid: u64, args: Vec<(String, Json)>) -> Json {
    let mut ev = entry(name, "X", ts, tid, args);
    ev.push("dur", Json::U64(dur.max(1)));
    ev
}

fn pc_args(pc: u32, instr_index: u32) -> Vec<(String, Json)> {
    vec![
        ("pc".to_string(), Json::Str(format!("{pc:#x}"))),
        ("instr_index".to_string(), Json::U64(instr_index as u64)),
    ]
}

/// A `thread_name` metadata event labeling track `tid`.
pub fn thread_name(tid: u64, name: &str) -> Json {
    entry(
        "thread_name".to_string(),
        "M",
        0,
        tid,
        vec![("name".to_string(), Json::Str(name.to_string()))],
    )
}

/// Converts a recorded stream to the trace-event JSON document.
pub fn trace_json(events: &[TraceEvent]) -> Json {
    let mut out: Vec<Json> = vec![
        entry(
            "process_name".to_string(),
            "M",
            0,
            tid::CPU,
            vec![(
                "name".to_string(),
                Json::Str("MultiTitan simulator".to_string()),
            )],
        ),
        thread_name(tid::CPU, "CPU"),
        thread_name(tid::FPU_ALU, "FPU ALU"),
        thread_name(tid::LS_PORT, "Load/Store port"),
        thread_name(tid::STALLS, "CPU stalls"),
        thread_name(tid::SCOREBOARD, "FPU scoreboard"),
    ];
    let mut body: Vec<Json> = Vec::with_capacity(events.len());
    for ev in events {
        let ts = ev.cycle;
        match ev.kind {
            EventKind::Transfer {
                pc,
                instr_index,
                instr,
            } => {
                let mut args = pc_args(pc, instr_index);
                args.push(("instr".to_string(), Json::Str(instr.to_string())));
                body.push(complete(
                    format!("xfer {}", op_name(instr.op)),
                    ts,
                    1,
                    tid::FPU_ALU,
                    args,
                ));
            }
            EventKind::ElementIssue {
                pc,
                instr_index,
                op,
                element,
                refs,
                latency,
            } => {
                let mut args = pc_args(pc, instr_index);
                args.push((
                    "refs".to_string(),
                    Json::Str(format!("{} := {} . {}", refs.rr, refs.ra, refs.rb)),
                ));
                body.push(complete(
                    format!("{} e{element}", op_name(op)),
                    ts,
                    latency,
                    tid::FPU_ALU,
                    args,
                ));
            }
            EventKind::ElementRetire { dest, element, .. } => {
                body.push(entry(
                    format!("retire {dest} e{element}"),
                    "i",
                    ts,
                    tid::FPU_ALU,
                    Vec::new(),
                ));
            }
            EventKind::LoadRetire { dest } => {
                body.push(entry(
                    format!("load ready {dest}"),
                    "i",
                    ts,
                    tid::LS_PORT,
                    Vec::new(),
                ));
            }
            EventKind::OverflowAbort { dest, squashed } => {
                body.push(entry(
                    format!("overflow abort {dest} (-{squashed})"),
                    "i",
                    ts,
                    tid::FPU_ALU,
                    Vec::new(),
                ));
            }
            EventKind::DcacheAccess {
                pc,
                instr_index,
                store,
                miss,
                penalty,
            } => {
                let kind = match (store, miss) {
                    (false, false) => "load",
                    (false, true) => "load miss",
                    (true, false) => "store",
                    (true, true) => "store miss",
                };
                let mut args = pc_args(pc, instr_index);
                args.push(("penalty".to_string(), Json::U64(penalty)));
                let port = if store { 2 } else { 1 };
                body.push(complete(
                    kind.to_string(),
                    ts,
                    penalty + port,
                    tid::LS_PORT,
                    args,
                ));
            }
            EventKind::CpuComplete {
                pc,
                instr_index,
                instr,
            } => {
                let text = instr.to_string();
                let mnemonic = text.split_whitespace().next().unwrap_or("?").to_string();
                let mut args = pc_args(pc, instr_index);
                args.push(("instr".to_string(), Json::Str(text)));
                body.push(complete(mnemonic, ts, 1, tid::CPU, args));
            }
            EventKind::Stall {
                pc,
                instr_index,
                cause,
                cycles,
            } => {
                body.push(complete(
                    format!("stall: {}", cause.name()),
                    ts,
                    cycles,
                    tid::STALLS,
                    pc_args(pc, instr_index),
                ));
            }
            EventKind::ScoreboardStall { pc, instr_index } => {
                body.push(complete(
                    "scoreboard".to_string(),
                    ts,
                    1,
                    tid::SCOREBOARD,
                    pc_args(pc, instr_index),
                ));
            }
            EventKind::Drain { pc, instr_index } => {
                body.push(complete(
                    "drain".to_string(),
                    ts,
                    1,
                    tid::CPU,
                    pc_args(pc, instr_index),
                ));
            }
        }
    }
    // The spec wants non-decreasing timestamps; emission order already is,
    // but sort stably so the guarantee survives any consumer reordering.
    body.sort_by_key(|ev| match ev.get("ts") {
        Some(Json::U64(ts)) => *ts,
        _ => 0,
    });
    out.extend(body);
    document(
        out,
        Json::obj([
            ("cycle_ns", Json::U64(40)),
            (
                "note",
                Json::Str("1 trace µs = 1 machine cycle (40 ns real time)".to_string()),
            ),
        ]),
    )
}

/// Wraps trace events in the top-level trace-event document envelope.
pub fn document(events: Vec<Json>, other_data: Json) -> Json {
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        ("otherData", other_data),
    ])
}

/// Renders the trace document as pretty-printed JSON.
pub fn trace_string(events: &[TraceEvent]) -> String {
    trace_json(events).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallCause;
    use mt_isa::fpu::ElementRefs;
    use mt_isa::{FReg, Instr};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                kind: EventKind::CpuComplete {
                    pc: 0x1_0000,
                    instr_index: 0,
                    instr: Instr::Nop,
                },
            },
            TraceEvent {
                cycle: 1,
                kind: EventKind::ElementIssue {
                    pc: 0x1_0004,
                    instr_index: 1,
                    op: FpOp::Mul,
                    element: 2,
                    refs: ElementRefs {
                        rr: FReg::new(4),
                        ra: FReg::new(0),
                        rb: FReg::new(2),
                    },
                    latency: 3,
                },
            },
            TraceEvent {
                cycle: 4,
                kind: EventKind::Stall {
                    pc: 0x1_0008,
                    instr_index: 2,
                    cause: StallCause::DataMiss,
                    cycles: 14,
                },
            },
            TraceEvent {
                cycle: 4,
                kind: EventKind::ElementRetire {
                    instr_id: 1,
                    element: 2,
                    dest: FReg::new(4),
                },
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_monotone_timestamps() {
        let text = trace_string(&sample());
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        assert!(events.len() >= 4 + 6, "body plus metadata");
        let mut last = 0.0;
        for ev in events {
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last, "timestamps must be non-decreasing");
            last = ts;
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "X" | "M" | "i"));
            if ph == "X" {
                assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 1.0);
            }
            if ph == "i" {
                assert_eq!(ev.get("s").unwrap().as_str(), Some("t"));
            }
        }
    }

    #[test]
    fn tracks_and_names_map_the_units() {
        let text = trace_string(&sample());
        assert!(text.contains("\"FPU ALU\""));
        assert!(text.contains("fmul e2"));
        assert!(text.contains("stall: dcache-miss"));
        assert!(text.contains("retire R4 e2"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(trace_string(&sample()), trace_string(&sample()));
    }
}
