//! A cross-kernel registry of named counters and histograms.
//!
//! The bench harness records one sample per kernel (cycles, MFLOPS,
//! stall fractions, …) and the registry aggregates them into the
//! `BENCH_*.json` perf trajectory: count/sum/min/max plus a log2 bucket
//! histogram per metric. `BTreeMap` keys keep every rendering stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// A power-of-two bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` counts samples with `i` significant bits, i.e. in
    /// `[2^(i-1), 2^i)`; bucket 0 counts zeros.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 || sample < self.min {
            self.min = sample;
        }
        self.max = self.max.max(sample);
        self.count += 1;
        self.sum += sample;
        self.buckets[(64 - sample.leading_zeros()) as usize] += 1;
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// JSON summary (buckets compressed to the occupied range).
    pub fn to_json(&self) -> Json {
        let hi = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        Json::obj([
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("min", Json::U64(self.min)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            (
                "log2_buckets",
                Json::Arr(self.buckets[..hi].iter().map(|&n| Json::U64(n)).collect()),
            ),
        ])
    }
}

/// Named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds to a named counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_default() += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into a named histogram (creating it empty).
    pub fn record(&mut self, name: &str, sample: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All metrics as one JSON object: `{"counters": {...},
    /// "histograms": {...}}` in name order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::U64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// A compact text rendering, one metric per line, name order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: n={} mean={:.1} min={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = Histogram::default();
        for s in [0, 1, 2, 3, 1000] {
            h.record(s);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1, "one zero");
        assert_eq!(h.buckets[1], 1, "one sample in [1,2)");
        assert_eq!(h.buckets[2], 2, "two samples in [2,4)");
        assert_eq!(h.buckets[10], 1, "1000 has 10 significant bits");
        assert!((h.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn registry_renders_deterministically() {
        let mut m = MetricsRegistry::new();
        m.add("zeta", 1);
        m.add("alpha", 2);
        m.add("alpha", 3);
        m.record("cycles", 100);
        assert_eq!(m.counter("alpha"), 5);
        assert_eq!(m.counter("missing"), 0);
        let text = m.render();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        let json = m.to_json().to_string();
        assert!(crate::json::validate(&json).is_ok());
        assert_eq!(json, m.to_json().to_string());
    }
}
