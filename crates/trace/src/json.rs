//! A deliberately small, dependency-free JSON layer.
//!
//! The build environment is offline, so instead of `serde` the exporters
//! build a [`Json`] tree and render it; object members keep insertion
//! order, which makes every export byte-stable across runs. A matching
//! recursive-descent [`parse`]/[`validate`] pair lets the tests (and CI)
//! assert that emitted documents are well-formed without external tools.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Appends a member to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, or an empty slice.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric view (integers widen; non-numbers are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// format committed to `BENCH_*.json`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) if v.is_finite() => {
                // `{}` prints the shortest roundtrip form; force a decimal
                // point so the value parses back as a float.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, b'[', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(members) => write_seq(out, indent, b'{', members.len(), |out, i, ind| {
                write_escaped(out, &members[i].0);
                out.push_str(": ");
                members[i].1.write(out, ind);
            }),
        }
    }
}

/// Shared layout for arrays and objects: one element per line when
/// pretty-printing, comma-separated otherwise.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: u8,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        item(out, i, indent.map(|l| l + 1));
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

/// Parses a JSON document (complete input, no trailing garbage).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Checks that `text` is well-formed JSON.
///
/// # Errors
///
/// See [`parse`].
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogates only appear in pairs we never emit;
                            // map lone ones to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {start}"))
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Consume one multi-byte UTF-8 scalar. The input is a
                    // &str, so the bytes are valid and `pos` is at a
                    // boundary — decode just this scalar's bytes rather
                    // than re-validating the whole remaining input (which
                    // would make parsing quadratic in document size).
                    let len = match lead {
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let ch = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Json::U64(u))
        } else {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::Str("LL 3: inner \"product\"".into())),
            ("cycles", Json::U64(1234)),
            ("mflops", Json::F64(5.5)),
            ("neg", Json::I64(-3)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back.get("cycles").unwrap().as_f64(), Some(1234.0));
            assert_eq!(
                back.get("name").unwrap().as_str(),
                Some("LL 3: inner \"product\"")
            );
            assert_eq!(back.get("flags").unwrap().items().len(), 2);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::F64(2.0).to_string(), "2.0");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert!(matches!(parse("2.0").unwrap(), Json::F64(_)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\x\"",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into()).to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut doc = Json::obj([("z", Json::U64(1))]);
        doc.push("a", Json::U64(2));
        assert_eq!(doc.to_string(), "{\"z\": 1, \"a\": 2}");
    }
}
