//! `mt-trace` — structured event tracing and cycle-attribution profiling
//! for the MultiTitan simulator.
//!
//! The paper argues entirely with timing diagrams and cycle accounting
//! (Figs. 5–8, the §3 Livermore/Linpack tables); this crate is the
//! substrate that lets the reproduction make the same arguments about its
//! own runs. The simulator emits a stream of typed per-cycle
//! [`TraceEvent`]s — instruction transfers, vector element issue/retire,
//! load/store port activity, CPU completions, stalls with their cause,
//! cache hits and misses — and everything downstream is *a consumer of
//! that stream*:
//!
//! * [`Profiler`] folds the stream into per-PC histograms (productive
//!   cycles, stalls by cause, data-cache misses, elements issued) and
//!   renders a rustc-style "hot spots" report with source spans;
//! * [`chrome::trace_json`] exports Chrome trace-event JSON, loadable in
//!   Perfetto with one track per functional unit/port;
//! * the simulator's own `Timeline` (Figs. 5–8 style diagrams) rebuilds
//!   its rows from the same events;
//! * [`MetricsRegistry`] aggregates named counters and histograms across
//!   kernels for the `BENCH_*.json` perf trajectory.
//!
//! # Zero cost when off
//!
//! Emission goes through the [`EventSink`] trait. The simulator's run
//! loop is generic over the sink, so a run with [`NullSink`]
//! monomorphizes every `sink.enabled()` guard to `false` and the
//! compiler removes both the event construction and the call — tracing
//! off costs nothing, which the `repro-*` binaries rely on.
//!
//! # Determinism
//!
//! Every report and exporter iterates `BTreeMap`s (never `HashMap`s) and
//! carries no wall-clock state, so two runs of the same program produce
//! byte-identical output — asserted by the golden-output tests.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::{EventKind, StallCause, TraceEvent};
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{PcStats, Profiler, SourceResolver};
pub use sink::{replay, EventSink, NullSink};
