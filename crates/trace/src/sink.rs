//! The event sink: where the simulator's event stream goes.

use crate::event::TraceEvent;

/// A consumer of simulator events.
///
/// The simulator's run loop is generic over the sink, so the dispatch is
/// static. Implementors that do nothing (like [`NullSink`]) compile away
/// entirely: the emitting code checks [`EventSink::enabled`] before even
/// constructing an event, and the check monomorphizes to a constant.
pub trait EventSink {
    /// Receives one event. Cycles are monotone non-decreasing across
    /// calls within a run.
    fn event(&mut self, ev: &TraceEvent);

    /// `false` promises that [`EventSink::event`] ignores its input, so
    /// emitters may skip constructing events altogether. Defaults to
    /// `true`.
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: tracing off. All emission code paths monomorphized
/// with this sink are removed by the optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn event(&mut self, _: &TraceEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Recording sink: every event, in order. The simulator uses this for
/// `SimConfig::trace`; consumers replay the buffer into profilers,
/// exporters, or timelines.
impl EventSink for Vec<TraceEvent> {
    fn event(&mut self, ev: &TraceEvent) {
        self.push(*ev);
    }
}

/// Feeds a recorded stream to a consumer, in order.
pub fn replay<S: EventSink>(events: &[TraceEvent], sink: &mut S) {
    for ev in events {
        sink.event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mt_isa::FReg;

    #[test]
    fn vec_sink_records_in_order() {
        let evs = [
            TraceEvent {
                cycle: 0,
                kind: EventKind::LoadRetire { dest: FReg::new(1) },
            },
            TraceEvent {
                cycle: 2,
                kind: EventKind::LoadRetire { dest: FReg::new(2) },
            },
        ];
        let mut buf: Vec<TraceEvent> = Vec::new();
        replay(&evs, &mut buf);
        assert_eq!(buf, evs);
        assert!(buf.enabled());
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
    }
}
