//! The cycle-attribution profiler: folds an event stream into per-PC
//! histograms and renders a "hot spots" report.
//!
//! Attribution is exact, not sampled: the simulator emits one event for
//! every productive cycle (a `CpuComplete`), every CPU stall cycle (a
//! `Stall` with its cause), and every post-halt drain cycle, each tagged
//! with the instruction it belongs to. The profiler's per-PC totals
//! therefore sum *exactly* to the aggregate `RunStats` counters — no
//! double-count, no leak — which the accounting-invariant tests assert
//! for every shipped kernel.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mt_isa::Instr;

use crate::event::{EventKind, StallCause, TraceEvent};
use crate::sink::EventSink;

/// Everything attributed to one program counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Text-section instruction index (`(pc - entry) / 4`).
    pub instr_index: u32,
    /// The instruction, captured from its first completion (disassembly
    /// fallback when no source map is available).
    pub instr: Option<Instr>,
    /// Cycles in which this instruction completed (productive cycles).
    pub completions: u64,
    /// FPU ALU transfers initiated here.
    pub transfers: u64,
    /// CPU stall cycles charged here, by cause (index via
    /// [`StallCause::index`]).
    pub stalls: [u64; StallCause::ALL.len()],
    /// FPU scoreboard stall cycles while this instruction held the IR
    /// (overlapped with CPU progress; not part of the cycle identity).
    pub scoreboard_stalls: u64,
    /// Vector/scalar elements issued on behalf of this instruction.
    pub elements: u64,
    /// Elements that count as floating-point operations.
    pub flops: u64,
    /// Data-cache accesses made by this instruction.
    pub dcache_accesses: u64,
    /// Data-cache misses among them.
    pub dcache_misses: u64,
    /// Post-halt drain cycles charged to this instruction (§2.3.1
    /// vectors that outlive the CPU).
    pub drain: u64,
}

impl PcStats {
    /// Total CPU stall cycles charged here.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Stall cycles of one cause.
    pub fn stalls_by(&self, cause: StallCause) -> u64 {
        self.stalls[cause.index()]
    }

    /// All cycles attributed to this PC: productive completions plus CPU
    /// stalls plus drain. Summed over all PCs this equals the run's total
    /// cycle count.
    pub fn attributed_cycles(&self) -> u64 {
        self.completions + self.stall_cycles() + self.drain
    }

    /// The dominant stall cause, if any stall was charged.
    pub fn hottest_cause(&self) -> Option<(StallCause, u64)> {
        StallCause::ALL
            .iter()
            .map(|&c| (c, self.stalls_by(c)))
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c.index())))
    }
}

/// Resolves an instruction index to a source location: `(location,
/// text)`, e.g. `("daxpy.s:19", "fldv R0..R7, 0(r1), 8")`. Return `None`
/// for instructions without a span; the report falls back to
/// disassembly.
pub type SourceResolver<'a> = &'a dyn Fn(u32) -> Option<(String, String)>;

/// The profiler: an [`EventSink`] that folds the stream into per-PC
/// rows. Rows live in a `BTreeMap`, so iteration — and every report —
/// is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    rows: BTreeMap<u32, PcStats>,
    element_retires: u64,
    load_retires: u64,
    overflow_aborts: u64,
    elements_squashed: u64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Folds a recorded stream.
    pub fn from_events(events: &[TraceEvent]) -> Profiler {
        let mut p = Profiler::new();
        crate::sink::replay(events, &mut p);
        p
    }

    fn row(&mut self, pc: u32, instr_index: u32) -> &mut PcStats {
        let row = self.rows.entry(pc).or_default();
        row.instr_index = instr_index;
        row
    }

    /// The per-PC rows, in PC order.
    pub fn rows(&self) -> impl Iterator<Item = (u32, &PcStats)> {
        self.rows.iter().map(|(&pc, row)| (pc, row))
    }

    /// The row of one PC.
    pub fn pc(&self, pc: u32) -> Option<&PcStats> {
        self.rows.get(&pc)
    }

    /// Rows sorted hottest-first (attributed cycles descending, PC
    /// ascending on ties — deterministic).
    pub fn hot_spots(&self) -> Vec<(u32, &PcStats)> {
        let mut rows: Vec<(u32, &PcStats)> = self.rows().collect();
        rows.sort_by_key(|&(pc, row)| (std::cmp::Reverse(row.attributed_cycles()), pc));
        rows
    }

    /// Sum of attributed cycles over all PCs (== the run's cycle count).
    pub fn total_cycles(&self) -> u64 {
        self.rows.values().map(PcStats::attributed_cycles).sum()
    }

    /// Sum of completions over all PCs (== `RunStats::instructions`).
    pub fn total_completions(&self) -> u64 {
        self.rows.values().map(|r| r.completions).sum()
    }

    /// Sum of stall cycles of one cause over all PCs.
    pub fn total_stalls(&self, cause: StallCause) -> u64 {
        self.rows.values().map(|r| r.stalls_by(cause)).sum()
    }

    /// Sum of issued elements (== `FpuStats::elements_issued`).
    pub fn total_elements(&self) -> u64 {
        self.rows.values().map(|r| r.elements).sum()
    }

    /// Sum of FLOP elements (== `FpuStats::flops`).
    pub fn total_flops(&self) -> u64 {
        self.rows.values().map(|r| r.flops).sum()
    }

    /// Sum of FPU ALU transfers (== `FpuStats::instructions_transferred`).
    pub fn total_transfers(&self) -> u64 {
        self.rows.values().map(|r| r.transfers).sum()
    }

    /// Sum of data-cache misses (== the run's `dcache.misses`).
    pub fn total_dcache_misses(&self) -> u64 {
        self.rows.values().map(|r| r.dcache_misses).sum()
    }

    /// Sum of data-cache accesses (== the run's `dcache.accesses()`).
    pub fn total_dcache_accesses(&self) -> u64 {
        self.rows.values().map(|r| r.dcache_accesses).sum()
    }

    /// Sum of FPU scoreboard stall cycles (==
    /// `FpuStats::scoreboard_stall_cycles`).
    pub fn total_scoreboard_stalls(&self) -> u64 {
        self.rows.values().map(|r| r.scoreboard_stalls).sum()
    }

    /// Sum of post-halt drain cycles (== `RunStats::drain_cycles`).
    pub fn total_drain(&self) -> u64 {
        self.rows.values().map(|r| r.drain).sum()
    }

    /// Element retirements observed (each issue retires unless squashed).
    pub fn element_retires(&self) -> u64 {
        self.element_retires
    }

    /// Load retirements observed.
    pub fn load_retires(&self) -> u64 {
        self.load_retires
    }

    /// Elements discarded by overflow aborts.
    pub fn elements_squashed(&self) -> u64 {
        self.elements_squashed
    }

    /// Renders the hot-spot report: one row per PC, hottest first, with
    /// source locations from `resolve` (falling back to disassembly),
    /// plus a stall-cause summary. `top` limits the table (0 = all).
    pub fn report(&self, title: &str, top: usize, resolve: SourceResolver<'_>) -> String {
        let total = self.total_cycles();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hot spots — {title}: {total} cycles over {} PCs",
            self.rows.len()
        );
        let _ = writeln!(
            out,
            "(cycles = completions + CPU stalls + drain; elems = FPU elements issued)\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>6}  {:>6} {:>6} {:>6} {:>5}  {:<18} {:<9} source",
            "cycles", "%", "compl", "stall", "elems", "miss", "hottest-stall", "pc"
        );
        let rows = self.hot_spots();
        let shown = if top == 0 {
            rows.len()
        } else {
            top.min(rows.len())
        };
        for &(pc, row) in &rows[..shown] {
            let cycles = row.attributed_cycles();
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * cycles as f64 / total as f64
            };
            let cause = match row.hottest_cause() {
                Some((c, n)) => format!("{} ({n})", c.name()),
                None => "-".to_string(),
            };
            let source = resolve(row.instr_index)
                .map(|(loc, text)| format!("{loc}: {text}"))
                .unwrap_or_else(|| match row.instr {
                    Some(i) => format!("<instr #{}> {i}", row.instr_index),
                    None => format!("<instr #{}>", row.instr_index),
                });
            let _ = writeln!(
                out,
                "{cycles:>8} {pct:>5.1}%  {:>6} {:>6} {:>6} {:>5}  {cause:<18} {pc:#09x} {source}",
                row.completions,
                row.stall_cycles(),
                row.elements,
                row.dcache_misses,
            );
        }
        if shown < rows.len() {
            let _ = writeln!(out, "     ... {} more PCs", rows.len() - shown);
        }
        let _ = writeln!(out);
        let _ = write!(out, "stall cycles by cause:");
        let mut any = false;
        for &cause in &StallCause::ALL {
            let n = self.total_stalls(cause);
            if n > 0 {
                let _ = write!(out, " {} {n}", cause.name());
                any = true;
            }
        }
        if !any {
            let _ = write!(out, " none");
        }
        let _ = writeln!(out);
        let (sb, drain) = (self.total_scoreboard_stalls(), self.total_drain());
        let _ = writeln!(
            out,
            "fpu: {} elements ({} flops), {} scoreboard stall cycles, {} drain cycles",
            self.total_elements(),
            self.total_flops(),
            sb,
            drain
        );
        out
    }
}

impl EventSink for Profiler {
    fn event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            EventKind::Transfer {
                pc, instr_index, ..
            } => self.row(pc, instr_index).transfers += 1,
            EventKind::ElementIssue {
                pc,
                instr_index,
                op,
                ..
            } => {
                let row = self.row(pc, instr_index);
                row.elements += 1;
                if op.is_flop() {
                    row.flops += 1;
                }
            }
            EventKind::ElementRetire { .. } => self.element_retires += 1,
            EventKind::LoadRetire { .. } => self.load_retires += 1,
            EventKind::OverflowAbort { squashed, .. } => {
                self.overflow_aborts += 1;
                self.elements_squashed += squashed;
            }
            EventKind::DcacheAccess {
                pc,
                instr_index,
                miss,
                ..
            } => {
                let row = self.row(pc, instr_index);
                row.dcache_accesses += 1;
                row.dcache_misses += miss as u64;
            }
            EventKind::CpuComplete {
                pc,
                instr_index,
                instr,
            } => {
                let row = self.row(pc, instr_index);
                row.completions += 1;
                row.instr.get_or_insert(instr);
            }
            EventKind::Stall {
                pc,
                instr_index,
                cause,
                cycles,
            } => self.row(pc, instr_index).stalls[cause.index()] += cycles,
            EventKind::ScoreboardStall { pc, instr_index } => {
                self.row(pc, instr_index).scoreboard_stalls += 1
            }
            EventKind::Drain { pc, instr_index } => self.row(pc, instr_index).drain += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_fparith::FpOp;
    use mt_isa::fpu::ElementRefs;
    use mt_isa::FReg;

    fn refs() -> ElementRefs {
        ElementRefs {
            rr: FReg::new(2),
            ra: FReg::new(0),
            rb: FReg::new(1),
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                kind: EventKind::CpuComplete {
                    pc: 0x1_0000,
                    instr_index: 0,
                    instr: Instr::Nop,
                },
            },
            TraceEvent {
                cycle: 1,
                kind: EventKind::Stall {
                    pc: 0x1_0004,
                    instr_index: 1,
                    cause: StallCause::LsPortBusy,
                    cycles: 2,
                },
            },
            TraceEvent {
                cycle: 3,
                kind: EventKind::ElementIssue {
                    pc: 0x1_0004,
                    instr_index: 1,
                    op: FpOp::Add,
                    element: 0,
                    refs: refs(),
                    latency: 3,
                },
            },
            TraceEvent {
                cycle: 4,
                kind: EventKind::CpuComplete {
                    pc: 0x1_0004,
                    instr_index: 1,
                    instr: Instr::Halt,
                },
            },
            TraceEvent {
                cycle: 5,
                kind: EventKind::Drain {
                    pc: 0x1_0004,
                    instr_index: 1,
                },
            },
        ]
    }

    #[test]
    fn folds_events_into_rows() {
        let p = Profiler::from_events(&sample_events());
        assert_eq!(p.total_cycles(), 5, "2 completions + 2 stall + 1 drain");
        assert_eq!(p.total_completions(), 2);
        assert_eq!(p.total_stalls(StallCause::LsPortBusy), 2);
        assert_eq!(p.total_elements(), 1);
        assert_eq!(p.total_flops(), 1);
        let hot = p.hot_spots();
        assert_eq!(hot[0].0, 0x1_0004, "the stalled PC is hottest");
        assert_eq!(hot[0].1.attributed_cycles(), 4);
        assert_eq!(hot[0].1.hottest_cause(), Some((StallCause::LsPortBusy, 2)));
    }

    #[test]
    fn report_is_deterministic_and_resolves_spans() {
        let p = Profiler::from_events(&sample_events());
        let resolve =
            |idx: u32| (idx == 1).then(|| ("k.s:7".to_string(), "fadd R2, R0, R1".to_string()));
        let a = p.report("k.s", 0, &resolve);
        let b = p.report("k.s", 0, &resolve);
        assert_eq!(a, b);
        assert!(a.contains("hot spots — k.s: 5 cycles"));
        assert!(a.contains("k.s:7: fadd R2, R0, R1"));
        assert!(a.contains("ls-port 2"));
        assert!(a.contains("<instr #0> nop"), "fallback disassembly: {a}");
    }

    #[test]
    fn top_truncates_but_notes_the_rest() {
        let p = Profiler::from_events(&sample_events());
        let r = p.report("k.s", 1, &|_| None);
        assert!(r.contains("... 1 more PCs"));
    }
}
