//! The typed event stream: what happened, in which cycle, attributed to
//! which instruction.
//!
//! Events carry the program counter and text-section instruction index of
//! the instruction they belong to, so any consumer can attribute cycles
//! to source lines (through the assembler's `SourceMap`) without the
//! simulator knowing about source text at all. Vector elements and
//! post-halt drain cycles are attributed to the FPU ALU instruction that
//! transferred the vector — the same convention the paper's timing
//! diagrams use.

use std::fmt;

use mt_fparith::FpOp;
use mt_isa::fpu::ElementRefs;
use mt_isa::{FReg, FpuAluInstr, Instr};

/// Why the CPU could not complete its pending instruction this cycle.
///
/// Mirrors the simulator's `StallBreakdown` field for field; the
/// accounting-invariant tests assert that the per-cause event totals sum
/// exactly to the aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// FPU ALU transfer blocked: the ALU IR was still issuing a vector.
    IrBusy,
    /// Memory operation blocked: the load/store port was busy.
    LsPortBusy,
    /// FPU load/store blocked on a reserved FPU register.
    FpuRegHazard,
    /// CPU instruction blocked on an integer load delay interlock.
    IntLoadHazard,
    /// Instruction fetch penalty (instruction buffer / cache miss).
    Fetch,
    /// Data-cache miss freeze.
    DataMiss,
    /// Taken-branch bubble.
    Branch,
}

impl StallCause {
    /// All causes, in the `StallBreakdown` field order.
    pub const ALL: [StallCause; 7] = [
        StallCause::IrBusy,
        StallCause::LsPortBusy,
        StallCause::FpuRegHazard,
        StallCause::IntLoadHazard,
        StallCause::Fetch,
        StallCause::DataMiss,
        StallCause::Branch,
    ];

    /// Stable index into per-cause arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable name (stable; used in reports and exports).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::IrBusy => "ir-busy",
            StallCause::LsPortBusy => "ls-port",
            StallCause::FpuRegHazard => "fpu-hazard",
            StallCause::IntLoadHazard => "int-hazard",
            StallCause::Fetch => "fetch",
            StallCause::DataMiss => "dcache-miss",
            StallCause::Branch => "branch",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// An FPU ALU instruction transferred from the CPU into the ALU IR
    /// (the address-bus cycle, `T` in the paper's diagrams).
    Transfer {
        /// PC of the transferring instruction.
        pc: u32,
        /// Text-section index of the transferring instruction.
        instr_index: u32,
        /// The transferred vector/scalar instruction.
        instr: FpuAluInstr,
    },
    /// One vector/scalar element issued into the functional units.
    ElementIssue {
        /// PC of the FPU ALU instruction the element belongs to.
        pc: u32,
        /// Text-section index of that instruction.
        instr_index: u32,
        /// The operation.
        op: FpOp,
        /// Element number within the vector (0-based).
        element: u8,
        /// The element's concrete register references.
        refs: ElementRefs,
        /// Functional-unit latency; the result retires at
        /// `cycle + latency`.
        latency: u64,
    },
    /// An element's result became architecturally visible.
    ElementRetire {
        /// Instruction identity assigned by the ALU IR at transfer.
        instr_id: u64,
        /// Element number within the vector.
        element: u8,
        /// Destination register written.
        dest: FReg,
    },
    /// A load's data became architecturally visible.
    LoadRetire {
        /// Destination register written.
        dest: FReg,
    },
    /// A vector overflow abort (§2.3.1) squashed the instruction's
    /// remaining elements.
    OverflowAbort {
        /// Destination of the overflowing element (recorded in the PSW).
        dest: FReg,
        /// Elements discarded (in flight + unissued).
        squashed: u64,
    },
    /// A data-cache access by a load/store (integer or floating-point).
    DcacheAccess {
        /// PC of the load/store.
        pc: u32,
        /// Text-section index of the load/store.
        instr_index: u32,
        /// `true` for stores (two port cycles), `false` for loads.
        store: bool,
        /// `true` when the access missed.
        miss: bool,
        /// Miss penalty in cycles (0 on a hit).
        penalty: u64,
    },
    /// The CPU completed an instruction this cycle (one per productive
    /// cycle; `c` in the timeline legend).
    CpuComplete {
        /// PC of the completed instruction.
        pc: u32,
        /// Text-section index of the completed instruction.
        instr_index: u32,
        /// The instruction.
        instr: Instr,
    },
    /// The CPU could not complete an instruction for `cycles` cycles.
    /// Multi-cycle penalties (miss freezes, branch bubbles, fetch
    /// penalties) are emitted once with the full span; per-cycle retries
    /// are emitted with `cycles == 1`.
    Stall {
        /// PC of the instruction held up (the fetched/fetching one).
        pc: u32,
        /// Text-section index of that instruction.
        instr_index: u32,
        /// Why.
        cause: StallCause,
        /// Number of cycles covered by this event.
        cycles: u64,
    },
    /// The ALU IR held an element whose operands or destination were
    /// still reserved (FPU-side stall; not a CPU stall cycle).
    ScoreboardStall {
        /// PC of the FPU ALU instruction in the IR.
        pc: u32,
        /// Text-section index of that instruction.
        instr_index: u32,
    },
    /// One post-halt cycle in which an in-flight vector kept issuing or
    /// draining after the CPU stopped (§2.3.1).
    Drain {
        /// PC of the last transferred FPU ALU instruction.
        pc: u32,
        /// Text-section index of that instruction.
        instr_index: u32,
    },
}

/// One event of the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Cycle in which the event happened (monotone non-decreasing within
    /// a recorded stream).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The instruction attribution `(pc, instr_index)` of the event, if
    /// it has one. Retirements carry register/identity information only —
    /// consumers that need their provenance join on `instr_id`.
    pub fn attribution(&self) -> Option<(u32, u32)> {
        match self.kind {
            EventKind::Transfer {
                pc, instr_index, ..
            }
            | EventKind::ElementIssue {
                pc, instr_index, ..
            }
            | EventKind::DcacheAccess {
                pc, instr_index, ..
            }
            | EventKind::CpuComplete {
                pc, instr_index, ..
            }
            | EventKind::Stall {
                pc, instr_index, ..
            }
            | EventKind::ScoreboardStall { pc, instr_index }
            | EventKind::Drain { pc, instr_index } => Some((pc, instr_index)),
            EventKind::ElementRetire { .. }
            | EventKind::LoadRetire { .. }
            | EventKind::OverflowAbort { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_ordered() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn attribution_covers_attributable_kinds() {
        let ev = TraceEvent {
            cycle: 3,
            kind: EventKind::Stall {
                pc: 0x1_0004,
                instr_index: 1,
                cause: StallCause::Branch,
                cycles: 1,
            },
        };
        assert_eq!(ev.attribution(), Some((0x1_0004, 1)));
        let retire = TraceEvent {
            cycle: 3,
            kind: EventKind::LoadRetire { dest: FReg::new(0) },
        };
        assert_eq!(retire.attribution(), None);
    }
}
