//! Comparators and reference data for the MultiTitan evaluation.
//!
//! Three things the paper's evaluation section compares against:
//!
//! * [`amdahl`] — the analytic model behind Fig. 11: overall performance as
//!   a function of the fraction of vectorizable code and the ratio of peak
//!   vector to scalar performance. This is where the paper's central
//!   argument lives — a cheap 2× vector capability captures most of the
//!   benefit for typical vectorization levels;
//! * [`cray`] — a first-order timing model of a classical vector-register
//!   machine (64-element vector registers, startup latencies, optional
//!   chaining, one result per cycle per unit), used for shape comparisons:
//!   long-vector throughput, `n½`, and short-vector crossovers against the
//!   simulated MultiTitan;
//! * [`published`] — the paper's own reported numbers (Fig. 14 Livermore
//!   MFLOPS for the MultiTitan cold/warm and the Cray-1S / Cray X-MP, and
//!   the §3.3 Linpack results), kept verbatim so benches can print
//!   paper-vs-measured side by side.

pub mod amdahl;
pub mod cray;
pub mod published;

pub use amdahl::{effective_vectorization, overall_speedup};
pub use cray::{ClassicalVectorMachine, CrayConfig, VectorOp};
pub use published::{harmonic_mean, LivermoreRow, PUBLISHED_LIVERMORE};
