//! The analytic model of Fig. 11: "Potential vector performance obtained".
//!
//! If a fraction `f` of a workload vectorizes and vector code runs `r`
//! times faster than scalar code, the overall speedup over the scalar
//! machine is `1 / ((1 − f) + f/r)` — Amdahl's law. The paper plots this
//! for `f` from 20% to 100% and `r` from 1 to 10, marking the MultiTitan at
//! `r = 2` and the Cray-1S at `r ≈ 10`, to argue that the cheap 2× vector
//! capability already captures most of the available benefit at typical
//! vectorization levels (0.3–0.7 per Worlton).

/// Overall speedup relative to the scalar machine.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or `peak_ratio < 1`.
///
/// ```
/// use mt_baseline::overall_speedup;
/// // 100% vectorized code gets the full peak ratio…
/// assert_eq!(overall_speedup(1.0, 4.0), 4.0);
/// // …but 40%-vectorized code gets only 1.25× even from an infinite-ish ratio.
/// assert!(overall_speedup(0.4, 1000.0) < 1.67);
/// ```
pub fn overall_speedup(fraction: f64, peak_ratio: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    assert!(peak_ratio >= 1.0, "peak ratio at least 1");
    1.0 / ((1.0 - fraction) + fraction / peak_ratio)
}

/// Inverts the model: given measured scalar and vector times for the same
/// work and the machine's peak ratio, returns the effective vectorized
/// fraction. Returns `None` when the observed speedup exceeds what the
/// peak ratio allows (i.e. the model cannot explain the measurement).
pub fn effective_vectorization(speedup: f64, peak_ratio: f64) -> Option<f64> {
    assert!(peak_ratio > 1.0);
    if speedup < 1.0 || speedup > peak_ratio {
        return None;
    }
    // speedup = 1 / (1 − f + f/r)  ⇒  f = (1 − 1/s) / (1 − 1/r)
    Some((1.0 - 1.0 / speedup) / (1.0 - 1.0 / peak_ratio))
}

/// The MultiTitan's ratio of peak vector to scalar performance (§2.4: the
/// basic vector capability gives a 2× speedup on vectorizable code).
pub const MULTITITAN_PEAK_RATIO: f64 = 2.0;

/// The Cray-1S / X-MP class ratio quoted in §2.4 ("about 10").
pub const CRAY_PEAK_RATIO: f64 = 10.0;

/// One sampled curve of Fig. 11.
#[derive(Debug, Clone)]
pub struct AmdahlCurve {
    /// Percent of the workload that vectorizes.
    pub vectorized_percent: u32,
    /// `(peak_ratio, overall_speedup)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Regenerates the five curves of Fig. 11 (20%–100% vectorized) over peak
/// ratios 1–10.
pub fn figure_11_curves() -> Vec<AmdahlCurve> {
    [20u32, 40, 60, 80, 100]
        .into_iter()
        .map(|pct| AmdahlCurve {
            vectorized_percent: pct,
            points: (0..=36)
                .map(|i| {
                    let r = 1.0 + i as f64 * 0.25;
                    (r, overall_speedup(pct as f64 / 100.0, r))
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits() {
        assert_eq!(overall_speedup(0.0, 10.0), 1.0);
        assert_eq!(overall_speedup(1.0, 10.0), 10.0);
        assert_eq!(overall_speedup(0.5, 1.0), 1.0);
    }

    #[test]
    fn the_papers_introduction_numbers() {
        // §1: with vectorization 0.3–0.7, infinitely fast vector hardware
        // improves the whole benchmark only 1.4–3.3×.
        let inf = 1e12;
        assert!((overall_speedup(0.3, inf) - 1.0 / 0.7).abs() < 1e-6);
        assert!((1.42..1.43).contains(&overall_speedup(0.3, inf)));
        assert!((3.33..3.34).contains(&overall_speedup(0.7, inf)));
    }

    #[test]
    fn multititan_captures_most_of_the_benefit_at_low_vectorization() {
        // The Fig. 11 argument: at 40% vectorized, the 2× MultiTitan gets
        // 1.25× of the at-most-1.67× available — over two thirds of the
        // achievable improvement from a 5× costlier ratio.
        let mt = overall_speedup(0.4, MULTITITAN_PEAK_RATIO);
        let cray = overall_speedup(0.4, CRAY_PEAK_RATIO);
        assert!((mt - 1.25).abs() < 1e-12);
        assert!(cray < 1.57);
        assert!((mt - 1.0) / (cray - 1.0) > 0.44);
    }

    #[test]
    fn monotone_in_both_arguments() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let s = overall_speedup(i as f64 / 10.0, 4.0);
            assert!(s >= prev);
            prev = s;
        }
        let mut prev = 0.0;
        for r in 1..=10 {
            let s = overall_speedup(0.6, r as f64);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn effective_vectorization_inverts_the_model() {
        for f in [0.1, 0.3, 0.5, 0.9] {
            let s = overall_speedup(f, 2.0);
            let back = effective_vectorization(s, 2.0).unwrap();
            assert!((back - f).abs() < 1e-12, "f={f}, back={back}");
        }
        assert_eq!(
            effective_vectorization(3.0, 2.0),
            None,
            "impossible speedup"
        );
        assert_eq!(effective_vectorization(0.5, 2.0), None, "slowdown");
    }

    #[test]
    fn figure_11_curves_shape() {
        let curves = figure_11_curves();
        assert_eq!(curves.len(), 5);
        // The 100% curve reaches the ratio; the 20% curve saturates early.
        let c100 = &curves[4];
        assert_eq!(c100.vectorized_percent, 100);
        let last = c100.points.last().unwrap();
        assert!((last.1 - last.0).abs() < 1e-12);
        let c20 = curves[0].points.last().unwrap();
        assert!(c20.1 < 1.25);
    }
}
