//! A first-order timing model of a classical vector-register machine.
//!
//! The paper contrasts the MultiTitan with machines in the Cray class:
//! 8 vector registers of 64 elements (32 Kbits of register storage, ~10×
//! the MultiTitan's unified file), long functional-unit startup, chaining,
//! a vector memory pipeline, and `n½ ≈ 15` (§2.2.1 cites Hockney's numbers:
//! Cray-1 `n½ = 15`, Cyber 205 `n½ = 100`).
//!
//! The model is a convoy/chime estimator in the Hennessy–Patterson style:
//! a loop body is a list of [`VectorOp`]s; each strip of at most
//! `max_vector_len` elements executes the body as a sequence of convoys
//! (operations that can overlap because chaining links them), each costing
//! its startup plus one cycle per element. It is deliberately first-order —
//! the point is shape (who wins at which vector length, where crossovers
//! sit), not absolute Cray accuracy; published Cray rates live in
//! [`crate::published`].

/// One operation of a strip-mined loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorOp {
    /// Vector load from memory.
    Load,
    /// Vector store to memory.
    Store,
    /// Vector floating add/subtract.
    Add,
    /// Vector floating multiply.
    Mul,
    /// Vector reciprocal (the Cray-1's divide path).
    Recip,
    /// Scalar loop-overhead instructions per strip (count).
    ScalarOverhead(u32),
}

/// Timing parameters of the modelled machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrayConfig {
    /// Elements per vector register.
    pub max_vector_len: u32,
    /// Startup (pipeline fill) cycles per functional unit class.
    pub add_startup: u64,
    /// Multiply unit startup.
    pub mul_startup: u64,
    /// Reciprocal unit startup.
    pub recip_startup: u64,
    /// Memory pipeline startup.
    pub mem_startup: u64,
    /// Whether dependent vector operations chain (overlap element-wise).
    pub chaining: bool,
    /// Cycle time in nanoseconds.
    pub cycle_ns: f64,
}

impl CrayConfig {
    /// A Cray-1S-like configuration (9.5 ns here matches the paper's X-MP
    /// figure reference; the 1S ran at 12.5 ns — both provided).
    pub const fn cray_1s() -> CrayConfig {
        CrayConfig {
            max_vector_len: 64,
            add_startup: 6,
            mul_startup: 7,
            recip_startup: 14,
            mem_startup: 12,
            chaining: true,
            cycle_ns: 12.5,
        }
    }

    /// A Cray X-MP-like configuration: faster clock, better memory.
    pub const fn cray_xmp() -> CrayConfig {
        CrayConfig {
            max_vector_len: 64,
            add_startup: 6,
            mul_startup: 7,
            recip_startup: 14,
            mem_startup: 8,
            chaining: true,
            cycle_ns: 9.5,
        }
    }

    fn startup(&self, op: VectorOp) -> u64 {
        match op {
            VectorOp::Load | VectorOp::Store => self.mem_startup,
            VectorOp::Add => self.add_startup,
            VectorOp::Mul => self.mul_startup,
            VectorOp::Recip => self.recip_startup,
            VectorOp::ScalarOverhead(_) => 0,
        }
    }
}

/// The modelled machine.
#[derive(Debug, Clone)]
pub struct ClassicalVectorMachine {
    config: CrayConfig,
}

impl ClassicalVectorMachine {
    /// Creates a machine with the given parameters.
    pub fn new(config: CrayConfig) -> ClassicalVectorMachine {
        ClassicalVectorMachine { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CrayConfig {
        &self.config
    }

    /// Cycles to execute `body` once over a strip of `strip_len` elements.
    ///
    /// With chaining, the whole dependent body is one chime: total startup
    /// of every unit in the chain plus one cycle per element. Without
    /// chaining each vector operation completes before the next starts.
    /// Scalar overhead adds one cycle per instruction.
    pub fn strip_cycles(&self, body: &[VectorOp], strip_len: u32) -> u64 {
        let mut cycles = 0u64;
        for &op in body {
            match op {
                VectorOp::ScalarOverhead(n) => cycles += n as u64,
                _ if self.config.chaining => cycles += self.config.startup(op),
                _ => cycles += self.config.startup(op) + strip_len as u64,
            }
        }
        if self.config.chaining
            && body
                .iter()
                .any(|o| !matches!(o, VectorOp::ScalarOverhead(_)))
        {
            cycles += strip_len as u64;
        }
        cycles
    }

    /// Cycles to execute `body` over `n` elements, strip-mined into chunks
    /// of at most `max_vector_len`.
    pub fn loop_cycles(&self, body: &[VectorOp], n: u32) -> u64 {
        let mvl = self.config.max_vector_len;
        let mut cycles = 0;
        let mut remaining = n;
        while remaining > 0 {
            let strip = remaining.min(mvl);
            cycles += self.strip_cycles(body, strip);
            remaining -= strip;
        }
        cycles
    }

    /// MFLOPS for `body` over `n` elements, given the FLOPs per element.
    pub fn mflops(&self, body: &[VectorOp], n: u32, flops_per_element: u32) -> f64 {
        let cycles = self.loop_cycles(body, n);
        if cycles == 0 {
            return 0.0;
        }
        (n as u64 * flops_per_element as u64) as f64 / (cycles as f64 * self.config.cycle_ns * 1e-3)
    }

    /// The vector half-performance length `n½` for a single chained body:
    /// the length at which the achieved rate is half the asymptotic rate.
    /// For a `startup + n` timing model this equals the total startup.
    pub fn n_half(&self, body: &[VectorOp]) -> u64 {
        // Asymptotic rate is 1 element/cycle (per strip); half rate when
        // overhead equals the element count.
        self.strip_cycles(body, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daxpy_body() -> Vec<VectorOp> {
        // y = a*x + y: load x, load y, mul, add, store; ~4 scalar overhead.
        vec![
            VectorOp::Load,
            VectorOp::Load,
            VectorOp::Mul,
            VectorOp::Add,
            VectorOp::Store,
            VectorOp::ScalarOverhead(4),
        ]
    }

    #[test]
    fn chaining_overlaps_the_chain() {
        let chained = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        let mut cfg = CrayConfig::cray_1s();
        cfg.chaining = false;
        let unchained = ClassicalVectorMachine::new(cfg);
        let body = daxpy_body();
        assert!(
            chained.strip_cycles(&body, 64) < unchained.strip_cycles(&body, 64),
            "chaining must help"
        );
        // Chained: sum of startups + 64 + overhead; unchained: each op
        // costs startup + 64.
        assert_eq!(
            chained.strip_cycles(&body, 64),
            12 + 12 + 7 + 6 + 12 + 4 + 64
        );
        assert_eq!(
            unchained.strip_cycles(&body, 64),
            (12 + 64) + (12 + 64) + (7 + 64) + (6 + 64) + (12 + 64) + 4
        );
    }

    #[test]
    fn strip_mining_covers_all_elements() {
        let m = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        let body = daxpy_body();
        let c100 = m.loop_cycles(&body, 100);
        let c64 = m.loop_cycles(&body, 64);
        let c36 = m.loop_cycles(&body, 36);
        assert_eq!(c100, c64 + c36, "100 = 64-strip + 36-strip");
    }

    #[test]
    fn n_half_is_the_startup_overhead() {
        let m = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        // A single chained add with a load: n½ in the teens, like the
        // Cray-1's ~15 (§2.2.1).
        let body = [VectorOp::Load, VectorOp::Add];
        let nh = m.n_half(&body);
        assert!((10..=25).contains(&nh), "n½ = {nh}");
        // Verify the defining property: rate(n½) ≈ half asymptotic rate.
        let t = m.strip_cycles(&body, nh as u32);
        let rate = nh as f64 / t as f64;
        assert!((rate - 0.5).abs() < 0.01);
    }

    #[test]
    fn long_vectors_beat_the_multititan_short_vectors_lose() {
        // The central shape claim: a Cray-class machine wins on long
        // vectors but its startup makes short vectors slow, while the
        // MultiTitan's n½ ≈ 4 keeps short vectors fast.
        let m = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        let body = [
            VectorOp::Load,
            VectorOp::Load,
            VectorOp::Add,
            VectorOp::Store,
            VectorOp::ScalarOverhead(4),
        ];
        let long = m.mflops(&body, 1024, 1);
        let short = m.mflops(&body, 2, 1);
        assert!(long > 10.0 * short, "startup dominates short vectors");
        // MultiTitan-style 4 cycles/result at 40 ns ⇒ 6.25 MFLOPS for a
        // 2-operand add — more than the modelled Cray achieves at n = 2.
        let mt_add_rate = 1.0 / (4.0 * 40.0e-3);
        assert!(short < mt_add_rate);
        assert!(long > mt_add_rate);
    }

    #[test]
    fn xmp_outruns_1s() {
        let body = daxpy_body();
        let one_s = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        let xmp = ClassicalVectorMachine::new(CrayConfig::cray_xmp());
        assert!(xmp.mflops(&body, 1000, 2) > one_s.mflops(&body, 1000, 2));
    }

    #[test]
    fn mflops_zero_elements() {
        let m = ClassicalVectorMachine::new(CrayConfig::cray_1s());
        assert_eq!(m.mflops(&[VectorOp::Add], 0, 1), 0.0);
    }
}
