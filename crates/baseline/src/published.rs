//! The paper's published evaluation numbers, kept verbatim for
//! paper-vs-measured reporting.

/// One row of Fig. 14: Livermore Loop MFLOPS on four machine/cache
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivermoreRow {
    /// Loop number, 1–24.
    pub loop_no: u8,
    /// MultiTitan, cold caches.
    pub mt_cold: f64,
    /// MultiTitan, warm caches.
    pub mt_warm: f64,
    /// Cray-1S (from McMahon / Tang & Davidson, as cited by the paper).
    pub cray_1s: f64,
    /// Cray X-MP (same sources).
    pub cray_xmp: f64,
    /// `*` in the figure: the loop vectorized on the Cray.
    pub cray_vectorized: bool,
}

/// Fig. 14, "Uniprocessor Livermore Loops (MFLOPS)", all 24 rows.
pub const PUBLISHED_LIVERMORE: [LivermoreRow; 24] = [
    LivermoreRow {
        loop_no: 1,
        mt_cold: 4.3,
        mt_warm: 19.0,
        cray_1s: 68.4,
        cray_xmp: 164.6,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 2,
        mt_cold: 2.8,
        mt_warm: 17.3,
        cray_1s: 16.4,
        cray_xmp: 45.1,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 3,
        mt_cold: 2.8,
        mt_warm: 17.3,
        cray_1s: 63.1,
        cray_xmp: 151.7,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 4,
        mt_cold: 2.3,
        mt_warm: 14.5,
        cray_1s: 20.6,
        cray_xmp: 65.9,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 5,
        mt_cold: 2.0,
        mt_warm: 8.0,
        cray_1s: 5.3,
        cray_xmp: 14.4,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 6,
        mt_cold: 3.4,
        mt_warm: 5.2,
        cray_1s: 6.6,
        cray_xmp: 11.3,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 7,
        mt_cold: 6.9,
        mt_warm: 23.4,
        cray_1s: 82.1,
        cray_xmp: 187.8,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 8,
        mt_cold: 6.0,
        mt_warm: 19.9,
        cray_1s: 65.6,
        cray_xmp: 145.8,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 9,
        mt_cold: 3.6,
        mt_warm: 20.3,
        cray_1s: 80.4,
        cray_xmp: 157.5,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 10,
        mt_cold: 1.5,
        mt_warm: 7.1,
        cray_1s: 28.1,
        cray_xmp: 61.2,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 11,
        mt_cold: 1.7,
        mt_warm: 6.6,
        cray_1s: 4.4,
        cray_xmp: 12.7,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 12,
        mt_cold: 1.4,
        mt_warm: 7.9,
        cray_1s: 21.8,
        cray_xmp: 74.3,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 13,
        mt_cold: 1.4,
        mt_warm: 1.8,
        cray_1s: 4.1,
        cray_xmp: 5.8,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 14,
        mt_cold: 2.6,
        mt_warm: 3.1,
        cray_1s: 7.3,
        cray_xmp: 22.2,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 15,
        mt_cold: 1.5,
        mt_warm: 1.6,
        cray_1s: 3.8,
        cray_xmp: 5.2,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 16,
        mt_cold: 2.3,
        mt_warm: 2.5,
        cray_1s: 3.2,
        cray_xmp: 6.2,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 17,
        mt_cold: 4.0,
        mt_warm: 4.9,
        cray_1s: 7.6,
        cray_xmp: 10.1,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 18,
        mt_cold: 7.4,
        mt_warm: 14.8,
        cray_1s: 54.9,
        cray_xmp: 110.6,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 19,
        mt_cold: 2.6,
        mt_warm: 4.2,
        cray_1s: 6.5,
        cray_xmp: 13.4,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 20,
        mt_cold: 4.5,
        mt_warm: 4.7,
        cray_1s: 9.6,
        cray_xmp: 13.2,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 21,
        mt_cold: 15.9,
        mt_warm: 21.4,
        cray_1s: 32.8,
        cray_xmp: 108.9,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 22,
        mt_cold: 2.4,
        mt_warm: 2.7,
        cray_1s: 39.9,
        cray_xmp: 65.8,
        cray_vectorized: true,
    },
    LivermoreRow {
        loop_no: 23,
        mt_cold: 3.0,
        mt_warm: 7.4,
        cray_1s: 10.4,
        cray_xmp: 13.9,
        cray_vectorized: false,
    },
    LivermoreRow {
        loop_no: 24,
        mt_cold: 1.1,
        mt_warm: 1.6,
        cray_1s: 1.6,
        cray_xmp: 3.6,
        cray_vectorized: false,
    },
];

/// Harmonic means the paper prints for loops 1–12, 13–24, and 1–24
/// (columns: MultiTitan cold, warm, Cray-1S, Cray X-MP).
pub const PUBLISHED_HARMONIC_1_12: [f64; 4] = [2.5, 10.8, 14.4, 35.8];
/// See [`PUBLISHED_HARMONIC_1_12`].
pub const PUBLISHED_HARMONIC_13_24: [f64; 4] = [2.4, 3.2, 5.6, 10.0];
/// See [`PUBLISHED_HARMONIC_1_12`].
pub const PUBLISHED_HARMONIC_1_24: [f64; 4] = [2.5, 4.9, 8.0, 15.6];

/// §3.3 Linpack results (MFLOPS).
pub mod linpack {
    /// MultiTitan scalar Linpack.
    pub const MT_SCALAR: f64 = 4.1;
    /// MultiTitan vector Linpack.
    pub const MT_VECTOR: f64 = 6.1;
    /// "approximately 25 times the performance of a VAX 11/780 with FPA".
    pub const VAX_RATIO: f64 = 25.0;
    /// "the vector performance is only 1/4 that of the Cray 1-S Coded BLAS".
    pub const CRAY_1S_RATIO: f64 = 4.0;
    /// "and 1/8 that of the Cray X-MP".
    pub const CRAY_XMP_RATIO: f64 = 8.0;
}

/// Harmonic mean of a set of rates — the aggregate the paper uses for the
/// Livermore Loops.
///
/// # Panics
///
/// Panics on an empty slice or a non-positive rate.
pub fn harmonic_mean(rates: &[f64]) -> f64 {
    assert!(!rates.is_empty(), "harmonic mean of nothing");
    let denom: f64 = rates
        .iter()
        .map(|&r| {
            assert!(r > 0.0, "harmonic mean requires positive rates");
            1.0 / r
        })
        .sum();
    rates.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_and_ordered() {
        assert_eq!(PUBLISHED_LIVERMORE.len(), 24);
        for (i, row) in PUBLISHED_LIVERMORE.iter().enumerate() {
            assert_eq!(row.loop_no as usize, i + 1);
            assert!(
                row.mt_cold <= row.mt_warm,
                "warm ≥ cold for loop {}",
                row.loop_no
            );
            assert!(
                row.cray_1s <= row.cray_xmp,
                "X-MP ≥ 1S for loop {}",
                row.loop_no
            );
        }
    }

    #[test]
    fn eleven_loops_vectorize_on_the_cray() {
        // Fig. 14 stars loops 1-4, 6-10, 12, 18, 21, 22.
        let starred: Vec<u8> = PUBLISHED_LIVERMORE
            .iter()
            .filter(|r| r.cray_vectorized)
            .map(|r| r.loop_no)
            .collect();
        assert_eq!(starred, vec![1, 2, 3, 4, 6, 7, 8, 9, 10, 12, 18, 21, 22]);
    }

    #[test]
    fn harmonic_means_match_the_printed_rows() {
        let col = |f: fn(&LivermoreRow) -> f64, lo: usize, hi: usize| {
            harmonic_mean(
                &PUBLISHED_LIVERMORE[lo..hi]
                    .iter()
                    .map(f)
                    .collect::<Vec<_>>(),
            )
        };
        // Allow rounding slack: the paper prints one decimal place.
        let close = |a: f64, b: f64| (a - b).abs() < 0.15;
        assert!(close(col(|r| r.mt_cold, 0, 12), PUBLISHED_HARMONIC_1_12[0]));
        assert!(close(col(|r| r.mt_warm, 0, 12), PUBLISHED_HARMONIC_1_12[1]));
        assert!(close(col(|r| r.cray_1s, 0, 12), PUBLISHED_HARMONIC_1_12[2]));
        assert!(close(
            col(|r| r.mt_cold, 12, 24),
            PUBLISHED_HARMONIC_13_24[0]
        ));
        assert!(close(
            col(|r| r.mt_warm, 12, 24),
            PUBLISHED_HARMONIC_13_24[1]
        ));
        assert!(close(col(|r| r.mt_warm, 0, 24), PUBLISHED_HARMONIC_1_24[1]));
        assert!(close(
            col(|r| r.cray_xmp, 0, 24),
            PUBLISHED_HARMONIC_1_24[3]
        ));
    }

    #[test]
    fn overall_conclusion_holds_in_the_data() {
        // §3.2: "the warm-cache MultiTitan performance was about one-half
        // that of the Cray 1-S and about one-third that of the Cray X-MP."
        let warm = PUBLISHED_HARMONIC_1_24[1];
        let cray1s = PUBLISHED_HARMONIC_1_24[2];
        let xmp = PUBLISHED_HARMONIC_1_24[3];
        assert!((warm / cray1s - 0.5).abs() < 0.15);
        assert!((warm / xmp - 0.33).abs() < 0.05);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[4.0]), 4.0);
        assert_eq!(harmonic_mean(&[2.0, 2.0]), 2.0);
        // Dominated by the slow member.
        assert!((harmonic_mean(&[1.0, 100.0]) - 1.9802).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive rates")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }
}
