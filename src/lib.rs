//! # MultiTitan: a unified vector/scalar floating-point architecture
//!
//! A full reproduction of *"A Unified Vector/Scalar Floating-Point
//! Architecture"* (Jouppi, Bertoni, Wall; ASPLOS-III 1989 / DEC WRL
//! Research Report 89/8): a cycle-level simulator of the MultiTitan
//! CPU+FPU, its toolchain, the paper's comparators, and every workload of
//! the evaluation section.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`fparith`] — bit-level IEEE-754 double arithmetic: the dual-path
//!   adder, the partial-product-tree multiplier, the 16-bit reciprocal
//!   approximation, and the 6-operation Newton–Raphson division sequence;
//! * [`isa`] — the instruction set: the 32-bit FPU ALU format of Fig. 3
//!   with its vector-length and stride fields, the 10-bit coprocessor bus
//!   ops, and the scalar CPU substrate;
//! * [`asm`] — a two-pass assembler (text syntax and builder API);
//! * [`mem`] — the memory hierarchy: 64 KB direct-mapped data cache with
//!   16-byte lines and the 14-cycle miss penalty, instruction cache and
//!   on-chip instruction buffer;
//! * [`core`] — the FPU itself: the 52-register unified vector/scalar
//!   register file, the reservation-bit scoreboard, the ALU instruction
//!   register with its element re-issue engine, and the three fully
//!   pipelined 3-cycle functional units;
//! * [`sim`] — the whole-machine cycle-level simulator with the paper's
//!   issue rules (one CPU instruction plus one FPU ALU element per cycle);
//! * [`mahler`] — the §3 vector-extended intermediate language and code
//!   generator;
//! * [`baseline`] — the Fig. 11 analytic model, a classical vector-machine
//!   comparator, and the paper's published numbers;
//! * [`kernels`] — the Livermore Loops, Linpack, and the figure kernels,
//!   each verified against a Rust reference;
//! * [`lint`] — the ahead-of-time static analyzer: the §2.3.2 ordering
//!   rule (provable violations and possible hazards), register dataflow
//!   over the 52-register file + PSW, and structural checks, surfaced as
//!   `mtasm lint`;
//! * [`trace`] — the observability layer: the typed per-cycle event
//!   stream ([`trace::EventSink`]), the per-PC cycle-attribution
//!   profiler, the cross-kernel metrics registry, and the Chrome
//!   trace-event / JSON exporters behind `mtasm profile` and the
//!   `repro-*` binaries' `--json` flags.
//!
//! # Quickstart
//!
//! ```
//! use multititan::asm::parse;
//! use multititan::sim::{Machine, SimConfig};
//!
//! // The Fibonacci recurrence of Fig. 8 — one vector instruction.
//! let program = parse(
//!     r"
//!     li   r1, 0x2000
//!     fld  R0, 0(r1)
//!     fld  R1, 8(r1)
//!     fadd R2..R9, R1..R8, R0..R7   ; recurrence: R[k] = R[k-1] + R[k-2]
//!     fadd R10, R10, R10            ; fence: occupy the IR until the chain
//!                                   ; has issued (§2.3.2 — the store below
//!                                   ; reads the *last* element)
//!     fst  R9, 16(r1)
//!     halt
//!     ",
//!     0x1_0000,
//! )?;
//!
//! let mut machine = Machine::new(SimConfig::default());
//! machine.load_program(&program);
//! machine.mem.memory.write_f64(0x2000, 1.0);
//! machine.mem.memory.write_f64(0x2008, 1.0);
//! let stats = machine.run()?;
//!
//! assert_eq!(machine.mem.memory.read_f64(0x2010), 55.0); // Fib(10)
//! assert!(stats.mflops() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use mt_asm as asm;
pub use mt_baseline as baseline;
pub use mt_core as core;
pub use mt_fault as fault;
pub use mt_fparith as fparith;
pub use mt_isa as isa;
pub use mt_kernels as kernels;
pub use mt_lint as lint;
pub use mt_mahler as mahler;
pub use mt_mem as mem;
pub use mt_serve as serve;
pub use mt_sim as sim;
pub use mt_trace as trace;
