//! A taste of the Fig. 14 evaluation: run a handful of Livermore Loops
//! cold and warm and print their MFLOPS (the full 24-loop table is
//! `cargo run --release -p mt-bench --bin repro-livermore`).
//!
//! ```sh
//! cargo run --release --example livermore_mini
//! ```

use multititan::kernels::harness::run_kernel;
use multititan::kernels::livermore;

fn main() {
    println!("Livermore Loops on the MultiTitan (MFLOPS at the 40 ns clock)\n");
    println!("loop                            cold    warm   dcache hit%");
    for n in [1u8, 3, 5, 11, 21, 24] {
        let kernel = livermore::by_number(n);
        let name = kernel.name.clone();
        let r = run_kernel(&kernel).expect("kernel validates against its reference");
        println!(
            "{name:<30} {:>6.1}  {:>6.1}   {:>6.1}",
            r.mflops_cold(),
            r.mflops_warm(),
            r.warm.dcache.hit_ratio().unwrap_or(0.0) * 100.0
        );
    }
    println!(
        "\nLoop 3 is a reduction and loop 11 a first-order recurrence — both\n\
         vectorize here (one instruction per strip) though classical vector\n\
         machines run them scalar; that is the paper's core claim."
    );
}
