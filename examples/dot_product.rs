//! §2.1.1: three ways to sum the elements of a vector product — the
//! scalar tree (Fig. 5), the linear chain (Fig. 6), and the vector tree
//! (Fig. 7) — showing the trade between cycles and CPU instruction
//! transfers that the unified register file makes possible.
//!
//! ```sh
//! cargo run --release --example dot_product
//! ```

use multititan::kernels::harness::run_kernel;
use multititan::kernels::reductions;

fn main() {
    println!("Reducing 8 elements (loads and stores included):\n");
    println!("coding                cycles   ALU transfers   CPU-free cycles");
    for kernel in [
        reductions::scalar_tree_sum(),
        reductions::linear_vector_sum(),
        reductions::vector_tree_sum(),
    ] {
        let name = kernel.name.clone();
        let r = run_kernel(&kernel).expect("kernel validates");
        let free = r.warm.cycles.saturating_sub(r.warm.instructions);
        println!(
            "{name:<22}  {:>4}   {:>13}   {:>15}",
            r.warm.cycles, r.warm.fpu.instructions_transferred, free
        );
    }
    println!(
        "\nThe vector tree matches the scalar tree's latency with fewer than half\n\
         the instruction transfers — \"this frees the CPU to issue more\n\
         instructions concurrent with the summation\" (§2.1.1)."
    );
}
