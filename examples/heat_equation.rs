//! A downstream application, not from the paper: explicit finite-difference
//! diffusion (`u[i] += α·(u[i−1] − 2u[i] + u[i+1])`) compiled through the
//! Mahler expression layer and run on the MultiTitan — the kind of short-
//! vector stencil the paper's introduction argues the machine is built for.
//!
//! ```sh
//! cargo run --release --example heat_equation
//! ```

use multititan::fparith::FpOp;
use multititan::mahler::{Mahler, VExpr};
use multititan::sim::{Machine, SimConfig};

const N: usize = 128; // interior points (boundaries fixed at 0)
const STEPS: usize = 40;
const ALPHA: f64 = 0.23;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two buffers, ping-ponged by pointer swap; strips of 8 over the
    // interior.
    let (ua, ub) = (0x2000u32, 0x3000u32);

    let mut m = Mahler::new();
    let dst = m.vector(8)?;
    let src = m.ivar()?; // &u[current][i]
    let out = m.ivar()?; // &u[next][i]
    let tmp = m.ivar()?;
    let step = m.ivar()?;
    let i = m.ivar()?;
    m.set_i(src, ua as i32);
    m.set_i(out, ub as i32);

    m.counted_loop(step, 0, STEPS as i32, 1, |m| {
        m.counted_loop(i, 0, (N / 8) as i32, 1, |m| {
            // u' = u + α·((u[i−1] + u[i+1]) − 2u[i]), all operands as
            // strided memory loads; the expression layer allocates the
            // temporaries (Sethi–Ullman label: 2).
            let expr = VExpr::load(src, -8, 8)
                .bin(FpOp::Add, VExpr::load(src, 8, 8))
                .bin(FpOp::Sub, VExpr::load(src, 0, 8).bin_const(FpOp::Mul, 2.0))
                .bin_const(FpOp::Mul, ALPHA)
                .bin(FpOp::Add, VExpr::load(src, 0, 8));
            m.assign(dst, &expr).unwrap();
            m.store(dst, out, 0, 8).unwrap();
            m.iadd_imm(src, src, 64);
            m.iadd_imm(out, out, 64);
        });
        // Swap the buffers and rewind (src/out walked N·8 bytes).
        use multititan::isa::cpu::AluOp;
        m.iadd_imm(src, src, -(8 * N as i32));
        m.iadd_imm(out, out, -(8 * N as i32));
        m.iop(AluOp::Add, tmp, src, src);
        m.iop(AluOp::Sub, tmp, tmp, src); // tmp = src
        m.iop(AluOp::Add, src, out, out);
        m.iop(AluOp::Sub, src, src, out); // src = out
        m.iop(AluOp::Add, out, tmp, tmp);
        m.iop(AluOp::Sub, out, out, tmp); // out = tmp
    });
    let routine = m.finish()?;

    let mut machine = Machine::new(SimConfig::default());
    routine.install(&mut machine);
    machine.warm_instructions(&routine.program);
    // A hot spot in the middle; u[0..] addresses cover i−1..i+1, so place
    // the interior at +8 with zero boundaries around it.
    let mut u = vec![0.0f64; N + 2];
    u[N / 2] = 100.0;
    machine.mem.memory.write_f64_slice(ua - 8, &u);
    machine
        .mem
        .memory
        .write_f64_slice(ub - 8, &vec![0.0; N + 2]);

    let stats = machine.run()?;

    // Reference, mirroring the expression's operation order.
    let mut want = u.clone();
    for _ in 0..STEPS {
        let mut next = vec![0.0f64; N + 2];
        for k in 1..=N {
            next[k] = ((want[k - 1] + want[k + 1]) - want[k] * 2.0) * ALPHA + want[k];
        }
        want = next;
    }

    let final_base = if STEPS.is_multiple_of(2) { ua } else { ub };
    let got = machine.mem.memory.read_f64_slice(final_base - 8, N + 2);
    let max_err = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err == 0.0, "bit-exact stencil, err {max_err:e}");

    println!("1-D diffusion, {N} points × {STEPS} steps on the MultiTitan:");
    print!("  profile: ");
    for k in (1..=N).step_by(N / 16) {
        print!("{:6.2}", got[k]);
    }
    println!(
        "\n  {} cycles, {:.2} MFLOPS, {:.1}% data-cache hits — bit-identical to the reference",
        stats.cycles,
        stats.mflops(),
        stats.dcache.hit_ratio().unwrap_or(0.0) * 100.0
    );
    Ok(())
}
