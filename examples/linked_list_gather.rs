//! Fig. 9: vector loading under program control — fixed-stride loads at
//! one per cycle, and pointer-chasing a linked list with the even/odd
//! alternation that hides every integer-load delay slot.
//!
//! ```sh
//! cargo run --release --example linked_list_gather
//! ```

use multititan::kernels::gather;
use multititan::kernels::harness::run_kernel;

fn main() {
    println!("Fig. 9 — gathering 8 doubles:\n");
    for stride in [1, 2, 8] {
        let r = run_kernel(&gather::fixed_stride(stride)).expect("validates");
        println!(
            "  fixed stride {stride}: {:>3} cycles, {} FPU loads (one per cycle)",
            r.warm.cycles, r.warm.fpu.loads
        );
    }
    let list = run_kernel(&gather::linked_list()).expect("validates");
    println!(
        "  linked list   : {:>3} cycles, {} FPU loads + 8 pointer loads, {} delay-slot stalls",
        list.warm.cycles, list.warm.fpu.loads, list.warm.stalls.int_load_hazard
    );
    println!(
        "\n\"Vector elements could even be gathered from a linked list with only a\n\
         doubling of the time otherwise required, even though loads have a one\n\
         cycle delay slot.\" — the alternating even^/odd^ pointer registers keep\n\
         the pipeline full."
    );
}
