//! Fig. 8: a recurrence expressed as a single vector instruction — the
//! unified register file's signature trick. Classical vector machines
//! forbid inter-element dependencies; the MultiTitan issues each element
//! through the scalar scoreboard, so `R[k] = R[k-1] + R[k-2]` just works.
//!
//! ```sh
//! cargo run --release --example fibonacci_recurrence
//! ```

use multititan::fparith::FpOp;
use multititan::isa::{FReg, FpuAluInstr, Instr};
use multititan::sim::{Machine, Program, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // R2 := R1 + R0 with vector length 16: element k computes
    // R(2+k) = R(1+k) + R(0+k) — each depending on the previous two.
    let fib = FpuAluInstr::vector(FpOp::Add, FReg::new(2), FReg::new(1), FReg::new(0), 16)?;
    let program = Program::assemble(&[Instr::Falu(fib), Instr::Halt])?;

    let mut machine = Machine::new(SimConfig::default());
    machine.load_program(&program);
    machine.warm_instructions(&program);
    machine.fpu.regs_mut().write_f64(FReg::new(0), 1.0);
    machine.fpu.regs_mut().write_f64(FReg::new(1), 1.0);

    let stats = machine.run()?;

    println!("First 18 Fibonacci numbers, one FPU ALU instruction:");
    for (i, v) in machine
        .fpu
        .regs()
        .read_vector(FReg::new(0), 18)
        .iter()
        .enumerate()
    {
        println!("  Fib({i:2}) = {v}");
    }
    println!(
        "\n{} cycles for {} chained elements — 3 cycles per element, as in Fig. 8",
        stats.cycles, stats.fpu.elements_issued
    );
    println!(
        "{} instruction transfer(s) from the CPU; the CPU was free for the rest",
        stats.fpu.instructions_transferred
    );
    Ok(())
}
