; Fig. 8 of the paper: a recurrence as a single vector instruction.
; Run:  mtasm run examples/asm/fibonacci.s --timeline

.data 0x2000
.double 1.0, 1.0          ; Fib(0), Fib(1)

    li   r1, 0x2000
    fld  R0, 0(r1)
    fld  R1, 8(r1)
    fadd R2..R17, R1..R16, R0..R15   ; sixteen chained elements; lint: allow(recurrence)
    fadd R20, R20, R20               ; fence: let the chain finish issuing
    fst  R17, 16(r1)                 ; Fib(17)
    halt
