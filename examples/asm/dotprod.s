; The paper's showcase (section 2.1.1): a dot product whose reduction stays
; in the vector result registers -- no separate scalar file to move data to.
; Run:  mtasm run examples/asm/dotprod.s

.data 0x2000                        ; x
.double 1, 2, 3, 4, 5, 6, 7, 8
.data 0x2100                        ; z
.double 8, 7, 6, 5, 4, 3, 2, 1

    li   r1, 0x2000
    fldv R0..R7, 0(r1), 8
    fldv R8..R15, 0x100(r1), 8
    fmul R0..R7, R0..R7, R8..R15    ; elementwise products
    fadd R16..R19, R0..R3, R4..R7   ; tree reduction (Fig. 7 pattern)
    fadd R20..R21, R16..R17, R18..R19
    fadd R22, R20, R21
    fst  R22, 0x200(r1)             ; 120.0
    halt
