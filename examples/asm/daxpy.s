; y = a*x + y over 16 elements, strip-mined by hand: the Linpack inner loop.
; Run:  mtasm run examples/asm/daxpy.s

.data 0x2000                        ; x
.double 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
.data 0x3000                        ; y
.double 100, 100, 100, 100, 100, 100, 100, 100
.double 100, 100, 100, 100, 100, 100, 100, 100
.data 0x4000
.double 2.5                         ; a

    li   r1, 0x2000
    li   r2, 0x3000
    li   r3, 2                      ; strips
    li   r4, 0
    fld  R16, 0x4000(r0)
strip:
    fldv R0..R7, 0(r1), 8           ; x strip (one load per cycle)
    fmul R0..R7, R0..R7, R16        ; a*x while y loads below overlap
    fldv R8..R15, 0(r2), 8
    fadd R8..R15, R8..R15, R0..R7
    fstv R8..R15, 0(r2), 8          ; stores interlock with the elements
    addi r1, r1, 64
    addi r2, r2, 64
    addi r4, r4, 1
    blt  r4, r3, strip
    halt
