//! The §3 compiler path: write a kernel in mini-Mahler (vector variables,
//! memory vectors, the `vsum` reduction, strip-mined loops), compile it,
//! and run it — including the paper's compile error when the declared
//! vectors exceed the register file.
//!
//! ```sh
//! cargo run --release --example mahler_compiler
//! ```

use multititan::fparith::FpOp;
use multititan::mahler::{Mahler, MahlerError};
use multititan::sim::{Machine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A strip-mined sum of squares: q = Σ x[k]² over 64 elements.
    let mut m = Mahler::new();
    let x = m.vector(8)?;
    let q = m.scalar()?;
    let s = m.scalar()?;
    let p = m.ivar()?;
    let i = m.ivar()?;
    m.load_const(q, 0.0)?;
    m.set_i(p, 0x2000);
    m.counted_loop(i, 0, 8, 1, |m| {
        m.load(x, p, 0, 8).unwrap();
        m.vop(FpOp::Mul, x, x, x).unwrap(); // x²  (one vector instruction)
        m.vsum(s, x).unwrap(); //             halving-tree reduction
        m.sop(FpOp::Add, q, q, s);
        m.iadd_imm(p, p, 64);
    });
    m.store_scalar(q, p, 0)?; // just past the last strip
    let routine = m.finish()?;

    println!(
        "compiled {} instructions, {} constants\n",
        routine.program.len(),
        routine.consts.len()
    );
    println!("first strip, disassembled:");
    for line in routine.program.disassemble().iter().skip(4).take(14) {
        println!("  {line}");
    }

    let mut machine = Machine::new(SimConfig::default());
    routine.install(&mut machine);
    machine.warm_instructions(&routine.program);
    for k in 0..64u32 {
        machine.mem.memory.write_f64(0x2000 + 8 * k, (k + 1) as f64);
    }
    let stats = machine.run()?;
    let expected: f64 = (1..=64).map(|k| (k * k) as f64).sum();
    let got = machine.mem.memory.read_f64(0x2000 + 64 * 8);
    println!("\nΣ k² for k = 1..64: {got} (expected {expected})");
    assert_eq!(got, expected);
    println!("{} cycles, {:.2} MFLOPS", stats.cycles, stats.mflops());

    // The paper: "If the total amount of space needed for the declared
    // vectors and temporaries was too large, a compile error was raised."
    let mut too_big = Mahler::new();
    for _ in 0..6 {
        too_big.vector(8)?; // six vectors of length 8…
    }
    for _ in 0..4 {
        too_big.scalar()?; // …and four scalars use all 52 registers
    }
    match too_big.vector(8) {
        Err(MahlerError::OutOfFpuRegisters {
            requested,
            available,
        }) => println!(
            "\ncompile error, as in §3: requested {requested} registers, {available} available"
        ),
        other => panic!("expected the register-file compile error, got {other:?}"),
    }
    Ok(())
}
