//! Quickstart: assemble a program from text, run it, inspect the timing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multititan::asm::parse;
use multititan::sim::{Machine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A DAXPY over one 8-element strip: y = a·x + y, the building block of
    // Linpack (§3.3). The vector range syntax `R0..R7` strides; the plain
    // `R16` broadcasts the scalar.
    let source = r"
        li   r1, 0x2000        ; &x
        li   r2, 0x3000        ; &y
        fld  R16, 0x4000(r0)   ; a

        fld  R0, 0(r1)         ; load the x strip (one load per cycle)
        fld  R1, 8(r1)
        fld  R2, 16(r1)
        fld  R3, 24(r1)
        fld  R4, 32(r1)
        fld  R5, 40(r1)
        fld  R6, 48(r1)
        fld  R7, 56(r1)
        fmul R0..R7, R0..R7, R16   ; a·x — one instruction, 8 elements

        fld  R8, 0(r2)         ; load y while the multiply issues
        fld  R9, 8(r2)
        fld  R10, 16(r2)
        fld  R11, 24(r2)
        fld  R12, 32(r2)
        fld  R13, 40(r2)
        fld  R14, 48(r2)
        fld  R15, 56(r2)
        fadd R8..R15, R8..R15, R0..R7

        fst  R8, 0(r2)         ; stores interlock with the issuing elements
        fst  R9, 8(r2)
        fst  R10, 16(r2)
        fst  R11, 24(r2)
        fst  R12, 32(r2)
        fst  R13, 40(r2)
        fst  R14, 48(r2)
        fst  R15, 56(r2)
        halt
    ";
    let program = parse(source, 0x1_0000)?;

    let mut machine = Machine::new(SimConfig::default());
    machine.load_program(&program);
    machine.warm_instructions(&program);
    machine.mem.memory.write_f64(0x4000, 3.0);
    for i in 0..8u32 {
        machine.mem.memory.write_f64(0x2000 + 8 * i, i as f64);
        machine
            .mem
            .memory
            .write_f64(0x3000 + 8 * i, 100.0 + i as f64);
    }

    let stats = machine.run()?;

    println!("y = 3·x + y over one strip:");
    for i in 0..8u32 {
        print!("{:7.1}", machine.mem.memory.read_f64(0x3000 + 8 * i));
    }
    println!("\n\n{stats}");
    println!(
        "\n{:.2} MFLOPS, {:.2} combined ops/cycle (CPU instructions + FPU elements)",
        stats.mflops(),
        stats.ops_per_cycle()
    );
    Ok(())
}
