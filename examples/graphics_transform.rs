//! §3.1 / Figs. 12–13: the graphics transform — 4-vectors through a 4×4
//! matrix at 20 MFLOPS steady state, "better than that often provided by
//! special-purpose graphics hardware".
//!
//! ```sh
//! cargo run --release --example graphics_transform
//! ```

use multititan::kernels::graphics::transform_points;
use multititan::kernels::harness::run_kernel;

fn main() {
    println!("Fig. 13 — transforming points by a 4x4 matrix\n");
    println!("points   cycles/point   MFLOPS (warm)");
    for npoints in [1u32, 4, 16, 64, 256, 1024] {
        let report = run_kernel(&transform_points(npoints)).expect("kernel validates");
        println!(
            "{npoints:>6}   {:>12.1}   {:>8.1}",
            report.warm.cycles as f64 / npoints as f64,
            report.mflops_warm(),
        );
    }
    println!("\nPaper: 35 cycles straight-line, 20 MFLOPS (28 FLOPs / 1.4 µs).");
    println!("Loop overhead costs ~4 cycles/point; large batches approach the figure.");
}
